package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const tinyScenarioJSON = `{
	"name": "http-test",
	"n": 2,
	"lambdaPerHour": 0.01,
	"tripHours": [0.5, 1],
	"batches": 200,
	"seed": 1
}`

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return srv, m
}

func postScenario(t *testing.T, srv *httptest.Server, body string) (*http.Response, evaluateResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack evaluateResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ack
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPEvaluatePollResultHappyPath(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})

	resp, ack := postScenario(t, srv, tinyScenarioJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ack.ID == "" || ack.Cached || ack.StatusURL != "/v1/jobs/"+ack.ID {
		t.Fatalf("ack %+v", ack)
	}

	deadline := time.Now().Add(30 * time.Second)
	var view JobView
	for {
		if getJSON(t, srv.URL+ack.StatusURL, &view); view.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Status != StatusDone {
		t.Fatalf("view %+v", view)
	}
	if view.Progress.BatchesDone != 200 || view.Progress.MaxBatches != 200 {
		t.Fatalf("progress %+v", view.Progress)
	}

	var res Result
	if resp := getJSON(t, srv.URL+ack.ResultURL, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if res.Name != "http-test" || res.Batches != 200 || len(res.Unsafety) != 2 {
		t.Fatalf("result %+v", res)
	}
}

func TestHTTPCacheHitOnRepeatedScenario(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})

	_, first := postScenario(t, srv, tinyScenarioJSON)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}

	resp, second := postScenario(t, srv, tinyScenarioJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit status %d", resp.StatusCode)
	}
	if !second.Cached || second.Status != StatusDone || second.ID == first.ID {
		t.Fatalf("ack %+v", second)
	}

	var one, two Result
	getJSON(t, srv.URL+"/v1/results/"+first.ID, &one)
	getJSON(t, srv.URL+"/v1/results/"+second.ID, &two)
	if one.Unsafety[1] != two.Unsafety[1] || one.ScenarioHash != two.ScenarioHash {
		t.Fatalf("cached result differs: %+v vs %+v", one, two)
	}

	// The acceptance check: the hit is observable on /debug/vars.
	var vars struct {
		AhsServe struct {
			CacheHits   int64 `json:"cacheHits"`
			CacheMisses int64 `json:"cacheMisses"`
		} `json:"ahs_serve"`
	}
	if resp := getJSON(t, srv.URL+"/debug/vars", &vars); resp.StatusCode != http.StatusOK {
		t.Fatalf("vars status %d", resp.StatusCode)
	}
	if vars.AhsServe.CacheHits != 1 || vars.AhsServe.CacheMisses != 1 {
		t.Fatalf("vars %+v", vars)
	}
}

func TestHTTPRejectsMalformedScenarios(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	cases := map[string]string{
		"not json":        `{"n": `,
		"unknown field":   `{"n":2,"lambdaPerHour":0.01,"tripHours":[1],"definitelyNotAField":1}`,
		"missing grid":    `{"n":2,"lambdaPerHour":0.01}`,
		"bad maneuver":    `{"n":2,"lambdaPerHour":0.01,"tripHours":[1],"maneuverRatesPerHour":{"XX":1}}`,
		"invalid params":  `{"n":0,"lambdaPerHour":0.01,"tripHours":[1]}`,
		"trailing data":   `{"n":2,"lambdaPerHour":0.01,"tripHours":[1]} {"again":true}`,
		"unsorted grid":   `{"n":2,"lambdaPerHour":0.01,"tripHours":[2,1]}`,
		"negative lambda": `{"n":2,"lambdaPerHour":-1,"tripHours":[1]}`,
	}
	for name, body := range cases {
		resp, _ := postScenario(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHTTPBackpressureReturns429(t *testing.T) {
	eval := newScriptedEval()
	srv, _ := newTestServer(t, Config{Workers: 1, QueueSize: 1, Eval: eval.fn})
	defer close(eval.release)

	scenario := func(seed int) string {
		return fmt.Sprintf(`{"n":2,"lambdaPerHour":0.01,"tripHours":[1],"batches":100,"seed":%d}`, seed)
	}
	if resp, _ := postScenario(t, srv, scenario(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	eval.waitStarted(t)
	if resp, _ := postScenario(t, srv, scenario(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	resp, _ := postScenario(t, srv, scenario(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPCancelAndResultStateMapping(t *testing.T) {
	eval := newScriptedEval()
	srv, _ := newTestServer(t, Config{Workers: 1, Eval: eval.fn})
	defer close(eval.release)

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	eval.waitStarted(t)

	// Result before completion: 202 with the job view.
	if resp := getJSON(t, srv.URL+ack.ResultURL, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pending result status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+ack.StatusURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, srv.URL+ack.StatusURL, &view)
		if view.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never settled: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Status != StatusCancelled {
		t.Fatalf("view %+v", view)
	}
	if resp := getJSON(t, srv.URL+ack.ResultURL, nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("cancelled result status %d, want 410", resp.StatusCode)
	}
}

func TestHTTPUnknownJobIs404(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	for _, url := range []string{"/v1/jobs/job-404", "/v1/results/job-404"} {
		if resp := getJSON(t, srv.URL+url, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", url, resp.StatusCode)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if health.Status != "ok" {
		t.Fatalf("health %+v", health)
	}
}

func TestHTTPDebugVarsIsValidExpvarJSON(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	raw, ok := vars["ahs_serve"]
	if !ok {
		t.Fatalf("no ahs_serve key in %s", body)
	}
	var met map[string]int64
	if err := json.Unmarshal(raw, &met); err != nil {
		t.Fatal(err)
	}
	for _, name := range metricNames {
		if _, ok := met[name]; !ok {
			t.Errorf("metric %q missing from /debug/vars", name)
		}
	}
}

func TestHTTPGracefulShutdownDrains(t *testing.T) {
	eval := newScriptedEval()
	srv, m := newTestServer(t, Config{Workers: 1, Eval: eval.fn})

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	eval.waitStarted(t)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- m.Shutdown(ctx)
	}()

	// Shutdown must block on the in-flight job until it completes.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned before drain: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(eval.release)
	if err := <-shutdownDone; err != nil {
		t.Fatal(err)
	}

	view, err := m.Job(ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("drained job %+v", view)
	}
	// New submissions are refused while the pool is stopped.
	resp, _ := postScenario(t, srv, tinyScenarioJSON)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPBodyTooLargeRejected(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	big := bytes.Repeat([]byte(" "), maxScenarioBytes+2)
	copy(big, []byte(`{"n":2`))
	resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
