package config

import "testing"

// TestPaperScenarioHashesArePinned pins Scenario.Hash() for the four
// Table 3 coordination strategies of the paper's headline experiment
// (n = 10, lambda = 1e-5/h, trips at 2..10 h, 20000 batches, seed 1).
//
// These digests are shared state: the service uses them as cache and
// deduplication keys, and the cluster coordinator uses them to let workers
// reuse compiled models across leases. Anything that moves them — a field
// rename, a new canonical default, a change to the canonical encoding —
// silently invalidates every stored result keyed by the old digest, so a
// move must be deliberate. If this test fails, confirm the encoding change
// is intended, mention the cache invalidation in the change description,
// and then update the constants.
func TestPaperScenarioHashesArePinned(t *testing.T) {
	golden := map[string]string{
		"DD": "ef40ebf17ea81a4a61e5bf172c0ecb3e84133968bd83362fdfd9d5021fa2cbff",
		"DC": "738d1bb6606fdd8e3b0b8feb2959ef8cd140a0fa44466d9dc35111a12fbc8f42",
		"CD": "346c247c102a1a4890851b176b10341e848d686d6f382730e0caff3c4df4f9ff",
		"CC": "e23721767783345cbbccdfd7e6a88c158d6cc73c4a7850f4a1bc76e762bf377b",
	}
	for _, strat := range []string{"DD", "DC", "CD", "CC"} {
		sc := &Scenario{
			Name:          "paper-" + strat,
			N:             10,
			LambdaPerHour: 1e-5,
			Strategy:      strat,
			TripHours:     []float64{2, 4, 6, 8, 10},
			Batches:       20000,
			Seed:          1,
		}
		got, err := sc.Hash()
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if got != golden[strat] {
			t.Errorf("%s: Hash() = %s, want %s (canonical encoding changed; see test comment)", strat, got, golden[strat])
		}

		// The digest must not move when defaults are spelled out (that is
		// the property that makes it a dedup key), but must move when the
		// evaluation itself changes.
		spelled := *sc
		spelled.Name = "renamed"
		spelled.Lanes = 2 // the canonical default
		if h, err := spelled.Hash(); err != nil || h != got {
			t.Errorf("%s: spelled-out defaults moved the hash: %s vs %s (err %v)", strat, h, got, err)
		}
		changed := *sc
		changed.Seed = 2
		if h, err := changed.Hash(); err != nil || h == got {
			t.Errorf("%s: changing the seed did not move the hash (err %v)", strat, err)
		}
	}
}
