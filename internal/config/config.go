// Package config loads AHS evaluation scenarios from JSON, so parameter
// studies can be versioned as files and replayed through cmd/ahs-sim
// (-config flag) instead of long flag lists.
//
// Unset optional fields inherit the paper's §4.1 defaults. Unknown fields
// are rejected to catch typos in scenario files.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"ahs/internal/core"
	"ahs/internal/platoon"
	"ahs/internal/stats"
)

// Scenario is one evaluation configuration. Pointer fields are optional;
// nil means "paper default".
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// N is the maximum number of vehicles per platoon (required).
	N int `json:"n"`
	// Lanes is the number of lanes / platoons (default 2).
	Lanes int `json:"lanes,omitempty"`
	// LambdaPerHour is the base failure rate λ (required).
	LambdaPerHour float64 `json:"lambdaPerHour"`
	// Strategy is the Table 3 coordination code: DD, DC, CD or CC
	// (default DD).
	Strategy string `json:"strategy,omitempty"`

	JoinRatePerHour    *float64 `json:"joinRatePerHour,omitempty"`
	LeaveRatePerHour   *float64 `json:"leaveRatePerHour,omitempty"`
	ChangeRatePerHour  *float64 `json:"changeRatePerHour,omitempty"`
	PassThroughPerHour *float64 `json:"passThroughPerHour,omitempty"`

	// ManeuverRatesPerHour overrides execution rates by maneuver
	// abbreviation ("TIE-N", "TIE", "TIE-E", "GS", "CS", "AS").
	ManeuverRatesPerHour map[string]float64 `json:"maneuverRatesPerHour,omitempty"`

	ManeuverBaseFailure *float64 `json:"maneuverBaseFailure,omitempty"`
	ParticipantFailure  *float64 `json:"participantFailure,omitempty"`
	DegradedPenalty     *float64 `json:"degradedPenalty,omitempty"`

	// TripHours is the measurement grid (required, ascending).
	TripHours []float64 `json:"tripHours"`
	// Batches caps the simulation effort (default 20000).
	Batches uint64 `json:"batches,omitempty"`
	// Seed selects the random stream family (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// DisableImportanceSampling turns off the automatic rare-event
	// forcing.
	DisableImportanceSampling bool `json:"disableImportanceSampling,omitempty"`
	// UsePaperStopRule applies the §4.1 convergence criterion.
	UsePaperStopRule bool `json:"usePaperStopRule,omitempty"`
}

// Load parses a scenario from JSON, rejecting unknown fields.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: parse scenario: %w", err)
	}
	// Reject trailing garbage.
	if dec.More() {
		return nil, errors.New("config: trailing data after scenario object")
	}
	if err := s.check(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile parses a scenario file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return s, nil
}

func (s *Scenario) check() error {
	var errs []error
	if len(s.TripHours) == 0 {
		errs = append(errs, errors.New("config: tripHours is required"))
	}
	for i := 1; i < len(s.TripHours); i++ {
		if s.TripHours[i] <= s.TripHours[i-1] {
			errs = append(errs, fmt.Errorf("config: tripHours not ascending at index %d", i))
			break
		}
	}
	for name := range s.ManeuverRatesPerHour {
		if _, err := maneuverByName(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func maneuverByName(name string) (platoon.Maneuver, error) {
	for _, m := range platoon.AllManeuvers() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("config: unknown maneuver %q", name)
}

// Canonical returns a deep copy of the scenario with every optional field
// replaced by its effective value (the paper's §4.1 defaults, exactly what
// Params and EvalOptions would use), so that two scenarios describing the
// same evaluation — one spelling defaults out, one leaving them implicit —
// become structurally identical. The receiver is not modified.
//
// Canonical scenarios are the basis of Hash, the deduplication key of the
// evaluation service.
func (s *Scenario) Canonical() *Scenario {
	def := core.DefaultParams()
	c := *s
	if c.Lanes == 0 {
		c.Lanes = def.Lanes
	}
	if c.Strategy == "" {
		c.Strategy = def.Strategy.String()
	} else if strat, err := platoon.ParseStrategy(c.Strategy); err == nil {
		// Normalize case ("dd" → "DD"); invalid codes are kept verbatim
		// and rejected later by Params.
		c.Strategy = strat.String()
	}
	fill := func(p *float64, v float64) *float64 {
		if p != nil {
			v = *p
		}
		return &v
	}
	c.JoinRatePerHour = fill(s.JoinRatePerHour, def.JoinRate)
	c.LeaveRatePerHour = fill(s.LeaveRatePerHour, def.LeaveRate)
	c.ChangeRatePerHour = fill(s.ChangeRatePerHour, def.ChangeRate)
	c.PassThroughPerHour = fill(s.PassThroughPerHour, def.PassThroughRate)
	c.ManeuverBaseFailure = fill(s.ManeuverBaseFailure, def.ManeuverBaseFailure)
	c.ParticipantFailure = fill(s.ParticipantFailure, def.ParticipantFailure)
	c.DegradedPenalty = fill(s.DegradedPenalty, def.DegradedPenalty)
	c.ManeuverRatesPerHour = make(map[string]float64, len(platoon.AllManeuvers()))
	for _, m := range platoon.AllManeuvers() {
		rate, ok := s.ManeuverRatesPerHour[m.String()]
		if !ok {
			rate = def.ManeuverRates[m]
		}
		c.ManeuverRatesPerHour[m.String()] = rate
	}
	c.TripHours = append([]float64(nil), s.TripHours...)
	if c.Batches == 0 {
		c.Batches = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return &c
}

// Hash returns a stable hex digest identifying the evaluation the scenario
// describes: the SHA-256 of the canonical form's JSON encoding, with the
// purely cosmetic Name field excluded. Scenarios that differ only in
// spelled-out defaults (or in name) hash identically, making the digest a
// safe cache/deduplication key. Encoding is deterministic — struct fields
// keep declaration order and Go's JSON encoder sorts map keys.
func (s *Scenario) Hash() (string, error) {
	c := s.Canonical()
	c.Name = ""
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("config: hash scenario: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Params converts the scenario into validated model parameters.
func (s *Scenario) Params() (core.Params, error) {
	p := core.DefaultParams()
	p.N = s.N
	if s.Lanes != 0 {
		p.Lanes = s.Lanes
	}
	p.Lambda = s.LambdaPerHour
	if s.Strategy != "" {
		strat, err := platoon.ParseStrategy(s.Strategy)
		if err != nil {
			return core.Params{}, err
		}
		p.Strategy = strat
	}
	if s.JoinRatePerHour != nil {
		p.JoinRate = *s.JoinRatePerHour
	}
	if s.LeaveRatePerHour != nil {
		p.LeaveRate = *s.LeaveRatePerHour
	}
	if s.ChangeRatePerHour != nil {
		p.ChangeRate = *s.ChangeRatePerHour
	}
	if s.PassThroughPerHour != nil {
		p.PassThroughRate = *s.PassThroughPerHour
	}
	for name, rate := range s.ManeuverRatesPerHour {
		m, err := maneuverByName(name)
		if err != nil {
			return core.Params{}, err
		}
		p.ManeuverRates[m] = rate
	}
	if s.ManeuverBaseFailure != nil {
		p.ManeuverBaseFailure = *s.ManeuverBaseFailure
	}
	if s.ParticipantFailure != nil {
		p.ParticipantFailure = *s.ParticipantFailure
	}
	if s.DegradedPenalty != nil {
		p.DegradedPenalty = *s.DegradedPenalty
	}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// EvalOptions converts the scenario's evaluation settings, calibrating the
// importance-sampling bias against the built system.
func (s *Scenario) EvalOptions(sys *core.AHS) core.EvalOptions {
	opts := core.EvalOptions{
		Times:      append([]float64(nil), s.TripHours...),
		Seed:       s.Seed,
		MaxBatches: s.Batches,
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxBatches == 0 {
		opts.MaxBatches = 20000
	}
	if !s.DisableImportanceSampling {
		opts.FailureBias = sys.SuggestedFailureBias(s.TripHours[len(s.TripHours)-1])
	}
	if s.UsePaperStopRule {
		opts.StopRule = stats.PaperStopRule()
	}
	return opts
}
