package config

import (
	"strings"
	"testing"
)

// FuzzLoad checks that arbitrary bytes never panic the scenario parser and
// that anything it accepts yields either valid params or a clean error.
func FuzzLoad(f *testing.F) {
	f.Add(validScenario)
	f.Add(`{"n":4,"lambdaPerHour":1e-5,"tripHours":[1]}`)
	f.Add(`{"tripHours":[]}`)
	f.Add(`{`)
	f.Add(`[1,2,3]`)
	f.Add(`{"n":1e999,"lambdaPerHour":-1,"tripHours":[0,0]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		s, err := Load(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted scenarios must convert without panicking; the params
		// themselves may still be rejected.
		if _, err := s.Params(); err != nil {
			return
		}
	})
}
