package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ahs/internal/core"
	"ahs/internal/platoon"
)

const validScenario = `{
	"name": "fig14-cc",
	"n": 12,
	"lambdaPerHour": 1e-5,
	"strategy": "CC",
	"joinRatePerHour": 8,
	"leaveRatePerHour": 4,
	"maneuverRatesPerHour": {"AS": 18, "TIE-N": 28},
	"participantFailure": 0.03,
	"tripHours": [2, 6, 10],
	"batches": 500,
	"seed": 9
}`

func TestLoadValidScenario(t *testing.T) {
	s, err := Load(strings.NewReader(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 12 || p.Lambda != 1e-5 || p.Strategy != platoon.CC {
		t.Fatalf("params %+v", p)
	}
	if p.JoinRate != 8 || p.LeaveRate != 4 {
		t.Fatalf("rates %v/%v", p.JoinRate, p.LeaveRate)
	}
	if p.ChangeRate != 6 {
		t.Fatalf("unset change rate must default to 6, got %v", p.ChangeRate)
	}
	if p.ManeuverRates[platoon.AS] != 18 || p.ManeuverRates[platoon.TIEN] != 28 {
		t.Fatalf("maneuver overrides %v", p.ManeuverRates)
	}
	if p.ManeuverRates[platoon.GS] != core.DefaultParams().ManeuverRates[platoon.GS] {
		t.Fatal("untouched maneuver rates must keep defaults")
	}
	if p.ParticipantFailure != 0.03 {
		t.Fatalf("participant failure %v", p.ParticipantFailure)
	}

	sys := core.MustBuild(p)
	opts := s.EvalOptions(sys)
	if opts.Seed != 9 || opts.MaxBatches != 500 || len(opts.Times) != 3 {
		t.Fatalf("eval options %+v", opts)
	}
	if opts.FailureBias <= 1 {
		t.Fatal("importance sampling should be on by default at this lambda")
	}
}

func TestLoadDefaults(t *testing.T) {
	s, err := Load(strings.NewReader(`{"n": 10, "lambdaPerHour": 1e-4, "tripHours": [6]}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != platoon.DD {
		t.Fatal("strategy must default to DD")
	}
	sys := core.MustBuild(p)
	opts := s.EvalOptions(sys)
	if opts.Seed != 1 || opts.MaxBatches != 20000 {
		t.Fatalf("defaulted options %+v", opts)
	}
	if opts.StopRule.MinSamples != 0 {
		t.Fatal("stop rule must be off unless requested")
	}
}

func TestLoadStopRuleAndNoBias(t *testing.T) {
	s, err := Load(strings.NewReader(`{
		"n": 4, "lambdaPerHour": 0.01, "tripHours": [2],
		"disableImportanceSampling": true, "usePaperStopRule": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	sys := core.MustBuild(p)
	opts := s.EvalOptions(sys)
	if opts.FailureBias != 0 {
		t.Fatal("importance sampling must be disabled")
	}
	if opts.StopRule.MinSamples != 10000 {
		t.Fatalf("stop rule %+v", opts.StopRule)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1],"typoField":1}`,
		"no trip hours":    `{"n":4,"lambdaPerHour":1e-5}`,
		"descending grid":  `{"n":4,"lambdaPerHour":1e-5,"tripHours":[2,1]}`,
		"bad maneuver":     `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1],"maneuverRatesPerHour":{"XX":3}}`,
		"not json":         `{`,
		"trailing garbage": `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1]} {"x":1}`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParamsValidationPropagates(t *testing.T) {
	s, err := Load(strings.NewReader(`{"n": 0, "lambdaPerHour": 1e-5, "tripHours": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Params(); err == nil {
		t.Fatal("expected invalid-params error for n=0")
	}
	s2, err := Load(strings.NewReader(`{"n": 4, "lambdaPerHour": 1e-5, "strategy": "ZZ", "tripHours": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Params(); err == nil {
		t.Fatal("expected strategy parse error")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(validScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "fig14-cc" {
		t.Fatalf("name %q", s.Name)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadLanes(t *testing.T) {
	s, err := Load(strings.NewReader(`{"n": 3, "lanes": 4, "lambdaPerHour": 1e-4, "tripHours": [2]}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Lanes != 4 {
		t.Fatalf("lanes %d, want 4", p.Lanes)
	}
	// Default stays 2 when omitted.
	s2, err := Load(strings.NewReader(`{"n": 3, "lambdaPerHour": 1e-4, "tripHours": [2]}`))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Lanes != 2 {
		t.Fatalf("default lanes %d, want 2", p2.Lanes)
	}
}

func TestCanonicalFillsDefaultsWithoutMutating(t *testing.T) {
	s, err := Load(strings.NewReader(`{"name":"min","n":4,"lambdaPerHour":1e-5,"tripHours":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Canonical()
	def := core.DefaultParams()
	if c.Lanes != def.Lanes || c.Strategy != def.Strategy.String() {
		t.Fatalf("canonical lanes/strategy %d/%q", c.Lanes, c.Strategy)
	}
	if c.JoinRatePerHour == nil || *c.JoinRatePerHour != def.JoinRate {
		t.Fatalf("canonical join rate %v", c.JoinRatePerHour)
	}
	if c.DegradedPenalty == nil || *c.DegradedPenalty != def.DegradedPenalty {
		t.Fatalf("canonical degraded penalty %v", c.DegradedPenalty)
	}
	if len(c.ManeuverRatesPerHour) != len(platoon.AllManeuvers()) {
		t.Fatalf("canonical maneuver rates %v", c.ManeuverRatesPerHour)
	}
	for _, m := range platoon.AllManeuvers() {
		if c.ManeuverRatesPerHour[m.String()] != def.ManeuverRates[m] {
			t.Fatalf("canonical rate for %s = %v, want %v",
				m, c.ManeuverRatesPerHour[m.String()], def.ManeuverRates[m])
		}
	}
	if c.Batches != 20000 || c.Seed != 1 {
		t.Fatalf("canonical batches/seed %d/%d", c.Batches, c.Seed)
	}
	// The receiver must be untouched.
	if s.Lanes != 0 || s.Strategy != "" || s.JoinRatePerHour != nil || s.ManeuverRatesPerHour != nil {
		t.Fatalf("Canonical mutated the receiver: %+v", s)
	}
	// Canonicalizing twice is a fixed point.
	c2 := c.Canonical()
	h1, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("Canonical is not idempotent under Hash")
	}
}

func TestCanonicalRoundTripsThroughParams(t *testing.T) {
	// A scenario and its canonical form must configure the same model and
	// the same evaluation.
	s, err := Load(strings.NewReader(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Canonical().Params()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("canonical params differ:\n%+v\n%+v", p1, p2)
	}
}

func TestHashStableAcrossSpelledOutDefaults(t *testing.T) {
	implicit, err := Load(strings.NewReader(`{"n":4,"lambdaPerHour":1e-5,"tripHours":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Load(strings.NewReader(`{
		"name": "same evaluation, defaults spelled out",
		"n": 4,
		"lanes": 2,
		"lambdaPerHour": 1e-5,
		"strategy": "dd",
		"joinRatePerHour": 12,
		"leaveRatePerHour": 4,
		"changeRatePerHour": 6,
		"maneuverRatesPerHour": {"TIE-N": 30, "TIE": 25, "TIE-E": 20, "GS": 20, "CS": 30, "AS": 15},
		"tripHours": [1, 2],
		"batches": 20000,
		"seed": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("defaults spelled out changed the hash: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", h1)
	}
}

func TestHashDistinguishesDifferentEvaluations(t *testing.T) {
	base := `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1,2]}`
	variants := map[string]string{
		"different n":        `{"n":5,"lambdaPerHour":1e-5,"tripHours":[1,2]}`,
		"different lambda":   `{"n":4,"lambdaPerHour":2e-5,"tripHours":[1,2]}`,
		"different grid":     `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1,3]}`,
		"different strategy": `{"n":4,"lambdaPerHour":1e-5,"strategy":"CC","tripHours":[1,2]}`,
		"different seed":     `{"n":4,"lambdaPerHour":1e-5,"seed":2,"tripHours":[1,2]}`,
		"no bias":            `{"n":4,"lambdaPerHour":1e-5,"disableImportanceSampling":true,"tripHours":[1,2]}`,
	}
	bs, err := Load(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	bh, err := bs.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for name, raw := range variants {
		vs, err := Load(strings.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vh, err := vs.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if vh == bh {
			t.Errorf("%s: hash collision with base", name)
		}
	}
}

func TestHashIgnoresName(t *testing.T) {
	a, err := Load(strings.NewReader(`{"name":"a","n":4,"lambdaPerHour":1e-5,"tripHours":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(strings.NewReader(`{"name":"b","n":4,"lambdaPerHour":1e-5,"tripHours":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("hash depends on the cosmetic name field")
	}
}
