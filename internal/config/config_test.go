package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ahs/internal/core"
	"ahs/internal/platoon"
)

const validScenario = `{
	"name": "fig14-cc",
	"n": 12,
	"lambdaPerHour": 1e-5,
	"strategy": "CC",
	"joinRatePerHour": 8,
	"leaveRatePerHour": 4,
	"maneuverRatesPerHour": {"AS": 18, "TIE-N": 28},
	"participantFailure": 0.03,
	"tripHours": [2, 6, 10],
	"batches": 500,
	"seed": 9
}`

func TestLoadValidScenario(t *testing.T) {
	s, err := Load(strings.NewReader(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 12 || p.Lambda != 1e-5 || p.Strategy != platoon.CC {
		t.Fatalf("params %+v", p)
	}
	if p.JoinRate != 8 || p.LeaveRate != 4 {
		t.Fatalf("rates %v/%v", p.JoinRate, p.LeaveRate)
	}
	if p.ChangeRate != 6 {
		t.Fatalf("unset change rate must default to 6, got %v", p.ChangeRate)
	}
	if p.ManeuverRates[platoon.AS] != 18 || p.ManeuverRates[platoon.TIEN] != 28 {
		t.Fatalf("maneuver overrides %v", p.ManeuverRates)
	}
	if p.ManeuverRates[platoon.GS] != core.DefaultParams().ManeuverRates[platoon.GS] {
		t.Fatal("untouched maneuver rates must keep defaults")
	}
	if p.ParticipantFailure != 0.03 {
		t.Fatalf("participant failure %v", p.ParticipantFailure)
	}

	sys := core.MustBuild(p)
	opts := s.EvalOptions(sys)
	if opts.Seed != 9 || opts.MaxBatches != 500 || len(opts.Times) != 3 {
		t.Fatalf("eval options %+v", opts)
	}
	if opts.FailureBias <= 1 {
		t.Fatal("importance sampling should be on by default at this lambda")
	}
}

func TestLoadDefaults(t *testing.T) {
	s, err := Load(strings.NewReader(`{"n": 10, "lambdaPerHour": 1e-4, "tripHours": [6]}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != platoon.DD {
		t.Fatal("strategy must default to DD")
	}
	sys := core.MustBuild(p)
	opts := s.EvalOptions(sys)
	if opts.Seed != 1 || opts.MaxBatches != 20000 {
		t.Fatalf("defaulted options %+v", opts)
	}
	if opts.StopRule.MinSamples != 0 {
		t.Fatal("stop rule must be off unless requested")
	}
}

func TestLoadStopRuleAndNoBias(t *testing.T) {
	s, err := Load(strings.NewReader(`{
		"n": 4, "lambdaPerHour": 0.01, "tripHours": [2],
		"disableImportanceSampling": true, "usePaperStopRule": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	sys := core.MustBuild(p)
	opts := s.EvalOptions(sys)
	if opts.FailureBias != 0 {
		t.Fatal("importance sampling must be disabled")
	}
	if opts.StopRule.MinSamples != 10000 {
		t.Fatalf("stop rule %+v", opts.StopRule)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1],"typoField":1}`,
		"no trip hours":    `{"n":4,"lambdaPerHour":1e-5}`,
		"descending grid":  `{"n":4,"lambdaPerHour":1e-5,"tripHours":[2,1]}`,
		"bad maneuver":     `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1],"maneuverRatesPerHour":{"XX":3}}`,
		"not json":         `{`,
		"trailing garbage": `{"n":4,"lambdaPerHour":1e-5,"tripHours":[1]} {"x":1}`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParamsValidationPropagates(t *testing.T) {
	s, err := Load(strings.NewReader(`{"n": 0, "lambdaPerHour": 1e-5, "tripHours": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Params(); err == nil {
		t.Fatal("expected invalid-params error for n=0")
	}
	s2, err := Load(strings.NewReader(`{"n": 4, "lambdaPerHour": 1e-5, "strategy": "ZZ", "tripHours": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Params(); err == nil {
		t.Fatal("expected strategy parse error")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(validScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "fig14-cc" {
		t.Fatalf("name %q", s.Name)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadLanes(t *testing.T) {
	s, err := Load(strings.NewReader(`{"n": 3, "lanes": 4, "lambdaPerHour": 1e-4, "tripHours": [2]}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Lanes != 4 {
		t.Fatalf("lanes %d, want 4", p.Lanes)
	}
	// Default stays 2 when omitted.
	s2, err := Load(strings.NewReader(`{"n": 3, "lambdaPerHour": 1e-4, "tripHours": [2]}`))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Lanes != 2 {
		t.Fatalf("default lanes %d, want 2", p2.Lanes)
	}
}
