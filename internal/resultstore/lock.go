//go:build unix

package resultstore

import (
	"fmt"
	"os"
	"syscall"
)

// acquireLock takes an exclusive, non-blocking flock on path, creating the
// file if needed. flock ownership dies with the process — including
// kill -9 — so a crashed writer never wedges the directory, unlike an
// O_EXCL-style lockfile. The restart e2e depends on this.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, ErrLocked
		}
		return nil, fmt.Errorf("resultstore: flock: %w", err)
	}
	return f, nil
}

// releaseLock drops the flock and closes the handle. Best-effort: the
// kernel releases the lock on close anyway.
func releaseLock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

// fileReplaced reports whether the file at path is no longer the one f has
// open — i.e. the writer compacted and renamed a new segment over it. The
// comparison is by (device, inode), the identity a rename changes.
func fileReplaced(f *os.File, path string) (bool, error) {
	held, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("resultstore: stat held segment: %w", err)
	}
	now, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // transient: mid-rename; next Refresh settles it
		}
		return false, fmt.Errorf("resultstore: stat segment: %w", err)
	}
	return !os.SameFile(held, now), nil
}
