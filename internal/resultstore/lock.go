//go:build unix

package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"syscall"
	"time"
)

// lockInfo is the JSON document the lock holder writes into the lock file
// after winning the flock, so a losing Open can name who beat it. The
// flock itself — not this document — is the authority: a stale document
// left by a kill -9'd holder is harmless because the kernel has already
// released its lock.
type lockInfo struct {
	PID   int    `json:"pid"`
	Owner string `json:"owner,omitempty"`
}

// LockHeldError reports a directory whose writer lock is held by another
// live process. It unwraps to ErrLocked, so existing
// errors.Is(err, ErrLocked) checks keep working, and additionally names
// the holder (PID, and owner when the holder declared one).
type LockHeldError struct {
	// Path is the lock file that was contended.
	Path string
	// HolderPID is the lock holder's process ID, 0 when the holder won
	// the flock but had not yet written its identity.
	HolderPID int
	// HolderOwner is the holder's declared owner name (Config.Owner),
	// empty when unknown.
	HolderOwner string
}

func (e *LockHeldError) Error() string {
	switch {
	case e.HolderPID == 0:
		return fmt.Sprintf("resultstore: %s is locked by another writer", e.Path)
	case e.HolderOwner == "":
		return fmt.Sprintf("resultstore: %s is locked by another writer (pid %d)", e.Path, e.HolderPID)
	default:
		return fmt.Sprintf("resultstore: %s is locked by another writer (pid %d, owner %s)", e.Path, e.HolderPID, e.HolderOwner)
	}
}

// Is makes errors.Is(err, ErrLocked) match the typed error.
func (e *LockHeldError) Is(target error) bool { return target == ErrLocked }

// acquireLock takes an exclusive, non-blocking flock on path, creating the
// file if needed, and records the winner's PID and owner in the file so a
// contending Open can name the holder. flock ownership dies with the
// process — including kill -9 — so a crashed writer never wedges the
// directory, unlike an O_EXCL-style lockfile. The restart e2e depends on
// this.
func acquireLock(path, owner string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			held := readLockInfo(path)
			return nil, &LockHeldError{Path: path, HolderPID: held.PID, HolderOwner: held.Owner}
		}
		return nil, fmt.Errorf("resultstore: flock: %w", err)
	}
	// Holding the lock, stamp our identity. Best-effort: losing the race
	// to write it only degrades the loser's error message.
	if data, err := json.Marshal(lockInfo{PID: os.Getpid(), Owner: owner}); err == nil {
		f.Truncate(0)
		f.WriteAt(data, 0)
	}
	return f, nil
}

// readLockInfo reads the holder identity from a contended lock file,
// retrying briefly: a winner that just took the flock may not have written
// its PID yet.
func readLockInfo(path string) lockInfo {
	deadline := time.Now().Add(250 * time.Millisecond)
	for {
		var info lockInfo
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 && json.Unmarshal(data, &info) == nil && info.PID != 0 {
			return info
		}
		if time.Now().After(deadline) {
			return lockInfo{}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// acquireLockBlocking takes an exclusive flock on path, waiting for the
// current holder to release it. Claims-segment operations use it: they
// hold the lock for microseconds, so waiting beats failing.
func acquireLockBlocking(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: flock: %w", err)
	}
	return f, nil
}

// releaseLock drops the flock and closes the handle. Best-effort: the
// kernel releases the lock on close anyway.
func releaseLock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

// fileReplaced reports whether the file at path is no longer the one f has
// open — i.e. the writer compacted and renamed a new segment over it. The
// comparison is by (device, inode), the identity a rename changes.
func fileReplaced(f *os.File, path string) (bool, error) {
	held, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("resultstore: stat held segment: %w", err)
	}
	now, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // transient: mid-rename; next Refresh settles it
		}
		return false, fmt.Errorf("resultstore: stat segment: %w", err)
	}
	return !os.SameFile(held, now), nil
}
