package resultstore

import (
	"fmt"
	"testing"
)

// BenchmarkStorePut measures the durable append path (frame + write +
// fsync) with a realistic curve-sized document. The fsync dominates;
// b.ReportAllocs keeps the framing allocation honest.
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(Config{Dir: b.TempDir(), CompactMinDead: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	doc := testDocB(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("hash-%d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures an indexed read: ReadAt + CRC verify + two
// JSON decodes. This is the hot path a warm fleet serves from.
func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := s.Put(fmt.Sprintf("hash-%d", i), testDocB(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	var out benchDoc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := s.Get(fmt.Sprintf("hash-%d", i%keys), &out)
		if err != nil || !ok {
			b.Fatalf("Get = %v, %v", ok, err)
		}
	}
}

// benchDoc mirrors the service Result shape at realistic size (a 32-point
// curve) without importing the service package.
type benchDoc struct {
	Name     string    `json:"name"`
	Times    []float64 `json:"times"`
	Unsafety []float64 `json:"unsafety"`
	CILo     []float64 `json:"ciLo"`
	CIHi     []float64 `json:"ciHi"`
	Batches  uint64    `json:"batches"`
}

func testDocB(seed uint64) benchDoc {
	d := benchDoc{Name: fmt.Sprintf("bench-%d", seed), Batches: 12800}
	for i := 0; i < 32; i++ {
		x := float64(seed*100+uint64(i)) / 7.0
		d.Times = append(d.Times, x)
		d.Unsafety = append(d.Unsafety, 1e-13*x)
		d.CILo = append(d.CILo, 0.9e-13*x)
		d.CIHi = append(d.CIHi, 1.1e-13*x)
	}
	return d
}
