// Package resultstore is a persistent, content-addressed store of finished
// evaluation results, shared across process restarts and across multiple
// ahs-serve instances pointed at the same directory.
//
// Keys are canonical scenario hashes (config.Scenario.Hash), whose space is
// pinned by the config golden test; values are JSON documents (the service
// layer stores its Result). Determinism of the estimator makes the store
// semantically free: for a fixed scenario the curve is bit-identical on
// every machine, so a stored result is indistinguishable from a re-run.
// encoding/json renders float64 with the shortest round-tripping
// representation, so read-back is bit-identical too — proven by the %b
// golden tests.
//
// On-disk layout (inside Config.Dir):
//
//	results.seg   append-only segment of framed records
//	LOCK          flock'd by the single writer; absent/ignored for readers
//
// The segment is a sequence of frames sharing the cluster journal's
// discipline:
//
//	uint32-LE payload length | uint32-LE CRC-32C of payload | payload
//
// The payload is one JSON record {key, value}. A torn write (partial frame
// at the tail) or a CRC-invalid frame cuts the scan at the last valid
// frame; the writer truncates the tail there on open, so appends never
// follow garbage. A CRC-valid frame that fails to decode is skipped and
// counted — the framing past it is still intact.
//
// A re-Put of an existing key appends a superseding record; the in-memory
// index always points at the newest. Superseded records are dead bytes,
// reclaimed by compaction: live records are rewritten to a temporary
// segment in ascending offset order, fsync'd, and atomically renamed over
// the old one. A crash between those steps leaves either the old or the
// new segment, both complete.
//
// Exactly one writer may own a directory at a time, enforced with a
// non-blocking flock on the LOCK file (released by the kernel on any
// process death, so a kill -9 never wedges the store). Additional
// instances open the same directory with Config.ReadOnly: followers take
// no lock, never truncate, and pick up the writer's appends — and survive
// its compactions — through Refresh.
package resultstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ahs/internal/telemetry"
)

// Segment and lock file names inside the store directory.
const (
	segmentName = "results.seg"
	lockName    = "LOCK"
)

// maxRecord bounds one frame's payload. Curves are kilobytes; anything
// near this bound is corruption, not data.
const maxRecord = 64 << 20

// crcTable is the Castagnoli polynomial table shared by all frames, the
// same polynomial as the cluster journal.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors.
var (
	// ErrLocked means another live process holds the directory's writer
	// lock. Open the directory with ReadOnly to follow it instead.
	ErrLocked = errors.New("resultstore: directory is locked by another writer")
	// ErrReadOnly rejects mutations on a follower store.
	ErrReadOnly = errors.New("resultstore: store is read-only")
	// ErrClosed rejects use after Close.
	ErrClosed = errors.New("resultstore: store is closed")
)

// Config configures Open. Only Dir is required.
type Config struct {
	// Dir is the store directory, created if missing.
	Dir string
	// ReadOnly opens the store as a follower: no writer lock, no tail
	// truncation, Put rejected. Refresh picks up the writer's appends.
	ReadOnly bool
	// Owner is a human-readable identity stamped into the writer lock
	// file, so a contending Open can name who holds the directory
	// (default: "pid-<PID>").
	Owner string
	// MaxStale bounds how long a follower serves its last-scanned view:
	// any Get or Has older than this refreshes first, so a long-idle
	// follower cannot serve a pre-compaction (superseded) record
	// indefinitely. 0 means the 2s default; negative disables the bound
	// (misses still refresh, as before).
	MaxStale time.Duration
	// CompactMinDead is the dead-byte threshold below which automatic
	// compaction never triggers (default 1 MiB). Compaction also requires
	// dead bytes to exceed live bytes, so the segment is rewritten at most
	// every time it doubles in waste.
	CompactMinDead int64
	// NoSync skips the per-record fsync. Only benchmarks measuring the
	// non-durability overhead should set it.
	NoSync bool
	// Telemetry, when non-nil, receives the ahs_store_* families.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Hook, when non-nil, is called at named internal sites
	// ("put.pre-sync", "put.post-sync", "compact.pre-rename",
	// "compact.post-rename") while the store mutex is held. The chaos
	// harness arms faultinject tripwires on it to crash a writer at
	// precisely scheduled points; production leaves it nil.
	Hook func(site string)
}

// defaultMaxStale is the follower staleness bound applied when
// Config.MaxStale is zero.
const defaultMaxStale = 2 * time.Second

// recordLoc locates one live record inside the segment.
type recordLoc struct {
	off   int64 // frame start offset
	size  int64 // framed size (header + payload)
	vOff  int64 // value offset within the payload, for direct reads
	vLen  int64
	crc   uint32
	order int // insertion order, preserved by compaction
}

// segRecord is the JSON payload of one frame.
type segRecord struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Store is the persistent result store. All methods are safe for
// concurrent use. Open with Open, stop with Close.
type Store struct {
	cfg     Config
	metrics *storeMetrics

	mu       sync.Mutex
	readOnly bool     // current role; flips on Promote
	seg      *os.File // writer: O_APPEND handle; follower: read handle
	lock     *os.File // held flock'd for the store's lifetime (writer only)
	index    map[string]recordLoc
	scanned  int64 // byte length of the scanned valid prefix
	dead     int64 // bytes owned by superseded records
	nextOrd  int
	closed   bool

	// lastRefresh is when a follower last reconciled with the segment on
	// disk; reads past MaxStale refresh first.
	lastRefresh time.Time

	compactions int
	lastCompact time.Time
	truncated   int64 // torn/corrupt tail bytes cut at open (writer)
	skipped     int   // CRC-valid but undecodable frames skipped by scans
}

// Stats is the store's operational snapshot, surfaced through GET /healthz
// on cmd/ahs-serve.
type Stats struct {
	Dir      string `json:"dir"`
	ReadOnly bool   `json:"readOnly"`
	// Entries counts distinct keys with a stored result.
	Entries int `json:"entries"`
	// SegmentBytes is the scanned segment length; DeadBytes the portion
	// owned by superseded records (reclaimed by compaction).
	SegmentBytes int64 `json:"segmentBytes"`
	DeadBytes    int64 `json:"deadBytes"`
	// Compactions counts segment rewrites since open.
	Compactions int `json:"compactions"`
	// LastCompaction is the RFC3339 time of the most recent compaction.
	LastCompaction string `json:"lastCompaction,omitempty"`
	// TruncatedBytes counts torn/corrupt tail bytes cut at open.
	TruncatedBytes int64 `json:"truncatedBytes,omitempty"`
	// SkippedRecords counts CRC-valid but undecodable frames ignored.
	SkippedRecords int `json:"skippedRecords,omitempty"`
}

// Open opens (or creates) the store directory, scans the segment — cutting
// a torn or corrupt tail at the last valid frame when writing — and builds
// the in-memory index. A second writer on the same directory fails with
// ErrLocked.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("resultstore: Config.Dir is required")
	}
	if cfg.CompactMinDead <= 0 {
		cfg.CompactMinDead = 1 << 20
	}
	if cfg.MaxStale == 0 {
		cfg.MaxStale = defaultMaxStale
	}
	if cfg.Owner == "" {
		cfg.Owner = fmt.Sprintf("pid-%d", os.Getpid())
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: store dir: %w", err)
	}
	s := &Store{
		cfg:         cfg,
		readOnly:    cfg.ReadOnly,
		index:       make(map[string]recordLoc),
		lastRefresh: time.Now(),
	}
	if !cfg.ReadOnly {
		lock, err := acquireLock(filepath.Join(cfg.Dir, lockName), cfg.Owner)
		if err != nil {
			return nil, err
		}
		s.lock = lock
	}

	segPath := filepath.Join(cfg.Dir, segmentName)
	mode := os.O_RDONLY
	if !cfg.ReadOnly {
		mode = os.O_CREATE | os.O_RDWR
	}
	f, err := os.OpenFile(segPath, mode, 0o644)
	if errors.Is(err, os.ErrNotExist) && cfg.ReadOnly {
		// A follower may open before the writer's first Put; Refresh will
		// find the segment later.
		f = nil
	} else if err != nil {
		s.release()
		return nil, fmt.Errorf("resultstore: open segment: %w", err)
	}
	s.seg = f
	if s.seg != nil {
		if err := s.scanFrom(0); err != nil {
			s.release()
			return nil, err
		}
		if !cfg.ReadOnly {
			size, err := s.seg.Seek(0, 2)
			if err != nil {
				s.release()
				return nil, fmt.Errorf("resultstore: seek segment: %w", err)
			}
			if s.scanned < size {
				cut := size - s.scanned
				cfg.Logf("resultstore: %s: dropping %d torn/corrupt trailing bytes", segPath, cut)
				if err := s.seg.Truncate(s.scanned); err != nil {
					s.release()
					return nil, fmt.Errorf("resultstore: truncate segment: %w", err)
				}
				s.truncated = cut
			}
		}
	}
	s.metrics = newStoreMetrics(cfg.Telemetry, s)
	if len(s.index) > 0 || s.truncated > 0 {
		cfg.Logf("resultstore: %s: %d results (%d segment bytes, %d dead), %d torn bytes cut",
			cfg.Dir, len(s.index), s.scanned, s.dead, s.truncated)
	}
	return s, nil
}

// release closes held file handles; used on Open error paths.
func (s *Store) release() {
	if s.seg != nil {
		s.seg.Close()
	}
	if s.lock != nil {
		releaseLock(s.lock)
	}
}

// scanFrom folds segment frames in [start, EOF) into the index; s.mu is
// not required during Open but must be held once the store is shared.
func (s *Store) scanFrom(start int64) error {
	size, err := s.seg.Seek(0, 2)
	if err != nil {
		return fmt.Errorf("resultstore: seek segment: %w", err)
	}
	if size <= start {
		s.scanned = max64(s.scanned, start)
		return nil
	}
	data := make([]byte, size-start)
	if _, err := s.seg.ReadAt(data, start); err != nil {
		return fmt.Errorf("resultstore: read segment: %w", err)
	}
	valid, recs, skipped := ScanSegment(data)
	for _, r := range recs {
		loc := recordLoc{
			off:   start + r.Off,
			size:  r.Size,
			vOff:  r.ValueOff,
			vLen:  r.ValueLen,
			crc:   r.CRC,
			order: s.nextOrd,
		}
		s.nextOrd++
		if old, ok := s.index[r.Key]; ok {
			s.dead += old.size
			loc.order = old.order // a supersede keeps its slot in the order
			s.nextOrd--
		}
		s.index[r.Key] = loc
	}
	s.skipped += skipped
	s.scanned = start + valid
	return nil
}

// ScannedRecord describes one valid frame found by ScanSegment, located
// relative to the scanned buffer.
type ScannedRecord struct {
	Key      string
	Off      int64 // frame start within the buffer
	Size     int64 // framed size (8-byte header + payload)
	ValueOff int64 // value start within the buffer
	ValueLen int64
	CRC      uint32
}

// ScanSegment walks framed records from data, returning the byte length of
// the valid prefix, the decoded record locations, and the count of frames
// skipped for being CRC-valid but undecodable. Scanning stops at the first
// torn or CRC-invalid frame: past it, frame boundaries are lost.
func ScanSegment(data []byte) (valid int64, records []ScannedRecord, skipped int) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return off, records, skipped
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecord || int64(n) > int64(len(rest)-8) {
			return off, records, skipped
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, records, skipped
		}
		var rec segRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" || len(rec.Value) == 0 {
			// CRC-valid but semantically broken: skip the frame, keep
			// scanning — the framing past it is still intact.
			skipped++
		} else {
			// Locate the raw value bytes inside the payload so Get can read
			// them back without re-framing.
			vStart := valueOffset(payload, rec.Value)
			records = append(records, ScannedRecord{
				Key:      rec.Key,
				Off:      off,
				Size:     8 + int64(n),
				ValueOff: off + 8 + vStart,
				ValueLen: int64(len(rec.Value)),
				CRC:      sum,
			})
		}
		off += 8 + int64(n)
		valid = off
	}
}

// valueOffset finds the offset of the raw value bytes within the payload.
// RawMessage captures the value text verbatim, so a byte search always
// finds it; an earlier byte-identical occurrence decodes to the same value,
// so any match is a correct answer.
func valueOffset(payload []byte, value json.RawMessage) int64 {
	if i := bytes.Index(payload, value); i >= 0 {
		return int64(i)
	}
	return 0
}

// Put stores value under key, superseding any previous record. The record
// is durable (fsync'd) when Put returns, unless NoSync is set. Putting an
// identical result twice is harmless — the estimator's determinism makes
// both records bit-identical — but still costs dead bytes until compaction.
func (s *Store) Put(key string, value any) error {
	if key == "" {
		return errors.New("resultstore: empty key")
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("resultstore: encode value: %w", err)
	}
	payload, err := json.Marshal(segRecord{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("resultstore: encode record: %w", err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("resultstore: record of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	crc := crc32.Checksum(payload, crcTable)
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	copy(frame[8:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	}
	off := s.scanned
	if _, err := s.seg.WriteAt(frame, off); err != nil {
		return fmt.Errorf("resultstore: segment write: %w", err)
	}
	s.hook("put.pre-sync")
	if !s.cfg.NoSync {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("resultstore: segment fsync: %w", err)
		}
	}
	s.hook("put.post-sync")
	// Locate the raw value inside the payload just written, mirroring the
	// scan, so Get and compaction see identical record geometry either way.
	var rec segRecord
	_ = json.Unmarshal(payload, &rec)
	vStart := valueOffset(payload, rec.Value)
	loc := recordLoc{
		off:   off,
		size:  int64(len(frame)),
		vOff:  off + 8 + vStart,
		vLen:  int64(len(rec.Value)),
		crc:   crc,
		order: s.nextOrd,
	}
	s.nextOrd++
	if old, ok := s.index[key]; ok {
		s.dead += old.size
		loc.order = old.order
		s.nextOrd--
	}
	s.index[key] = loc
	s.scanned += int64(len(frame))
	s.metrics.put(len(frame))

	if s.dead >= s.cfg.CompactMinDead && s.dead > s.scanned-s.dead {
		if err := s.compactLocked(); err != nil {
			// A failed compaction loses nothing: the rename is atomic and
			// the segment keeps growing. Log and carry on.
			s.cfg.Logf("resultstore: compaction failed: %v", err)
		}
	}
	return nil
}

// Get unmarshals the stored value for key into value, reporting whether
// the key exists. Each read is CRC-verified against the frame checksum
// recorded at scan time, so on-disk corruption surfaces as an error, never
// as silently wrong bits. A follower that misses refreshes once and
// retries, so results appended by the writer are visible without polling.
func (s *Store) Get(key string, value any) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	s.maybeRefreshStaleLocked()
	loc, ok := s.index[key]
	if !ok && s.readOnly {
		if err := s.refreshLocked(); err != nil {
			return false, err
		}
		loc, ok = s.index[key]
	}
	if !ok {
		s.metrics.miss()
		return false, nil
	}
	payload := make([]byte, loc.size-8)
	if _, err := s.seg.ReadAt(payload, loc.off+8); err != nil {
		return false, fmt.Errorf("resultstore: read record: %w", err)
	}
	if crc32.Checksum(payload, crcTable) != loc.crc {
		return false, fmt.Errorf("resultstore: record for %s failed CRC verification", key)
	}
	var rec segRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return false, fmt.Errorf("resultstore: decode record: %w", err)
	}
	if err := json.Unmarshal(rec.Value, value); err != nil {
		return false, fmt.Errorf("resultstore: decode value: %w", err)
	}
	s.metrics.hit()
	return true, nil
}

// Has reports whether a result for key is stored, without decoding it.
// Followers refresh on a miss, like Get.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.maybeRefreshStaleLocked()
	if _, ok := s.index[key]; ok {
		return true
	}
	if s.readOnly {
		if err := s.refreshLocked(); err != nil {
			return false
		}
		_, ok := s.index[key]
		return ok
	}
	return false
}

// maybeRefreshStaleLocked bounds a follower's staleness: when the last
// reconciliation with the on-disk segment is older than MaxStale, refresh
// before serving. Without it a long-idle follower would keep serving the
// pre-compaction view — including superseded records — indefinitely,
// because hits never consulted the disk. Writers are authoritative and
// never refresh. Best-effort: a failed refresh (logged) falls back to the
// stale view rather than failing the read.
func (s *Store) maybeRefreshStaleLocked() {
	if !s.readOnly || s.cfg.MaxStale < 0 {
		return
	}
	if time.Since(s.lastRefresh) <= s.cfg.MaxStale {
		return
	}
	if err := s.refreshLocked(); err != nil {
		s.cfg.Logf("resultstore: staleness refresh failed: %v", err)
	}
}

// Len reports the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys returns the stored keys in insertion order (compaction-stable).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return s.index[keys[a]].order < s.index[keys[b]].order })
	return keys
}

// Refresh makes a follower pick up records the writer appended since the
// last scan, surviving writer compactions (a replaced segment is reopened
// and rescanned from the start). On a writer it is a no-op.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.readOnly {
		return nil
	}
	return s.refreshLocked()
}

// refreshLocked is Refresh with s.mu held.
func (s *Store) refreshLocked() error {
	s.lastRefresh = time.Now()
	segPath := filepath.Join(s.cfg.Dir, segmentName)
	if s.seg == nil {
		f, err := os.Open(segPath)
		if errors.Is(err, os.ErrNotExist) {
			return nil // the writer has not created the segment yet
		}
		if err != nil {
			return fmt.Errorf("resultstore: open segment: %w", err)
		}
		s.seg = f
		return s.scanFrom(0)
	}
	replaced, err := fileReplaced(s.seg, segPath)
	if err != nil {
		return err
	}
	if replaced {
		// The writer compacted: the held handle points at the old segment.
		// Reopen and rebuild the index from scratch.
		f, err := os.Open(segPath)
		if err != nil {
			return fmt.Errorf("resultstore: reopen segment: %w", err)
		}
		s.seg.Close()
		s.seg = f
		s.index = make(map[string]recordLoc)
		s.scanned, s.dead, s.nextOrd = 0, 0, 0
		return s.scanFrom(0)
	}
	return s.scanFrom(s.scanned)
}

// Compact rewrites the segment keeping only the newest record per key.
// The writer calls it automatically when dead bytes dominate; it is
// exported for operator tooling and tests.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.readOnly:
		return ErrReadOnly
	}
	return s.compactLocked()
}

// compactLocked rewrites live records, in stable insertion order, into a
// temporary segment, fsyncs it, and atomically renames it over the old
// one. Crash-safe: the rename is atomic and the new segment is durable
// before the old one disappears.
func (s *Store) compactLocked() error {
	segPath := filepath.Join(s.cfg.Dir, segmentName)
	tmpPath := segPath + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)

	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return s.index[keys[a]].order < s.index[keys[b]].order })

	newIndex := make(map[string]recordLoc, len(keys))
	var off int64
	for _, k := range keys {
		loc := s.index[k]
		frame := make([]byte, loc.size)
		if _, err := s.seg.ReadAt(frame, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("resultstore: compact read: %w", err)
		}
		if crc32.Checksum(frame[8:], crcTable) != loc.crc {
			tmp.Close()
			return fmt.Errorf("resultstore: compact: record for %s failed CRC verification", k)
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("resultstore: compact write: %w", err)
		}
		newIndex[k] = recordLoc{
			off:   off,
			size:  loc.size,
			vOff:  off + (loc.vOff - loc.off),
			vLen:  loc.vLen,
			crc:   loc.crc,
			order: loc.order,
		}
		off += loc.size
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	s.hook("compact.pre-rename")
	if err := os.Rename(tmpPath, segPath); err != nil {
		return err
	}
	s.hook("compact.post-rename")
	syncDir(s.cfg.Dir)

	// Swap the handle onto the new segment.
	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: reopen compacted segment: %w", err)
	}
	s.seg.Close()
	s.seg = f
	s.index = newIndex
	s.scanned = off
	s.dead = 0
	s.compactions++
	s.lastCompact = time.Now()
	s.metrics.compacted()
	s.cfg.Logf("resultstore: compacted %s to %d results, %d bytes", s.cfg.Dir, len(newIndex), off)
	return nil
}

// Stats reports the store's directory, size and compaction status.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:            s.cfg.Dir,
		ReadOnly:       s.readOnly,
		Entries:        len(s.index),
		SegmentBytes:   s.scanned,
		DeadBytes:      s.dead,
		Compactions:    s.compactions,
		TruncatedBytes: s.truncated,
		SkippedRecords: s.skipped,
	}
	if !s.lastCompact.IsZero() {
		st.LastCompaction = s.lastCompact.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// ReadOnly reports whether the store is currently a follower. It starts
// as Config.ReadOnly and flips to false on a successful Promote.
func (s *Store) ReadOnly() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// Dir reports the store directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Sync flushes the segment to stable storage. Puts already sync
// individually unless NoSync; Sync exists for drain paths.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.readOnly || s.seg == nil {
		return nil
	}
	return s.seg.Sync()
}

// Promote upgrades a follower into the writer: it takes the directory's
// writer flock (failing with a LockHeldError while the old writer's lock
// is still held — the kernel releases it the instant that process dies,
// kill -9 included), reopens the segment read-write, reconciles the index
// with whatever the dead writer managed to append, and cuts any torn tail
// it left, exactly as a fresh writer Open would. On success the store
// accepts Puts. Promoting a store that is already the writer is a no-op.
//
// Promote is the storage half of fleet failover; advancing the fencing
// epoch and re-adopting claimed work are the caller's job (see
// internal/fleet).
func (s *Store) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.readOnly {
		return nil
	}
	lock, err := acquireLock(filepath.Join(s.cfg.Dir, lockName), s.cfg.Owner)
	if err != nil {
		return err
	}
	segPath := filepath.Join(s.cfg.Dir, segmentName)
	f, err := os.OpenFile(segPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		releaseLock(lock)
		return fmt.Errorf("resultstore: promote: open segment: %w", err)
	}
	// Rebuild the index from the file we now own: the held follower handle
	// may point at a pre-compaction inode, and the dead writer may have
	// appended past our last scan.
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = f
	s.index = make(map[string]recordLoc)
	s.scanned, s.dead, s.nextOrd = 0, 0, 0
	if err := s.scanFrom(0); err != nil {
		releaseLock(lock)
		s.lock = nil
		return err
	}
	size, err := s.seg.Seek(0, 2)
	if err != nil {
		releaseLock(lock)
		return fmt.Errorf("resultstore: promote: seek segment: %w", err)
	}
	if s.scanned < size {
		cut := size - s.scanned
		s.cfg.Logf("resultstore: promote: dropping %d torn/corrupt trailing bytes left by the previous writer", cut)
		if err := s.seg.Truncate(s.scanned); err != nil {
			releaseLock(lock)
			return fmt.Errorf("resultstore: promote: truncate segment: %w", err)
		}
		s.truncated += cut
	}
	s.lock = lock
	s.readOnly = false
	s.cfg.Logf("resultstore: promoted to writer on %s (%d results, %d segment bytes)", s.cfg.Dir, len(s.index), s.scanned)
	return nil
}

// Abandon simulates the process dying without cleanup — kill -9 — for
// chaos tests: every file handle is closed with no sync, no compaction
// and no lock bookkeeping (closing the flock'd handle releases the lock,
// exactly as process death would). The store is unusable afterwards; all
// methods fail with ErrClosed. Production code has no reason to call it.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.seg != nil {
		s.seg.Close()
	}
	if s.lock != nil {
		s.lock.Close()
	}
}

// Close syncs and closes the store, releasing the writer lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.seg != nil {
		if !s.readOnly {
			if serr := s.seg.Sync(); serr != nil {
				err = serr
			}
		}
		if cerr := s.seg.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if s.lock != nil {
		releaseLock(s.lock)
	}
	return err
}

// hook fires the configured fault-site hook, if any.
func (s *Store) hook(site string) {
	if s.cfg.Hook != nil {
		s.cfg.Hook(site)
	}
}

// syncDir fsyncs a directory so a just-renamed file durably appears in it.
// Best-effort, as for the cluster journal.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// storeMetrics holds the ahs_store_* families; nil (no registry) disables
// recording.
type storeMetrics struct {
	puts        *telemetry.Counter
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	bytes       *telemetry.Counter
	compactions *telemetry.Counter
}

func newStoreMetrics(reg *telemetry.Registry, s *Store) *storeMetrics {
	if reg == nil {
		return nil
	}
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(telemetry.Opts{Name: name, Help: help})
	}
	m := &storeMetrics{
		puts:        counter("ahs_store_puts_total", "Results appended to the persistent store."),
		hits:        counter("ahs_store_gets_hit_total", "Store reads that found the key."),
		misses:      counter("ahs_store_gets_miss_total", "Store reads that missed."),
		bytes:       counter("ahs_store_appended_bytes_total", "Framed bytes appended to the store segment."),
		compactions: counter("ahs_store_compactions_total", "Segment compactions of the persistent store."),
	}
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_store_entries",
		Help: "Distinct scenario hashes with a stored result.",
	}, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.index))
	})
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_store_segment_bytes",
		Help: "Current store segment length in bytes.",
	}, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.scanned)
	})
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_store_dead_bytes",
		Help: "Segment bytes owned by superseded records (reclaimed by compaction).",
	}, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.dead)
	})
	return m
}

func (m *storeMetrics) put(frameBytes int) {
	if m != nil {
		m.puts.Inc()
		m.bytes.Add(uint64(frameBytes))
	}
}

func (m *storeMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

func (m *storeMetrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}

func (m *storeMetrics) compacted() {
	if m != nil {
		m.compactions.Inc()
	}
}
