package resultstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ahs/internal/telemetry"
)

// curveDoc is the shape the service layer stores: a name plus float64
// slices whose bits must survive the round-trip exactly.
type curveDoc struct {
	Name     string    `json:"name"`
	Times    []float64 `json:"times"`
	Unsafety []float64 `json:"unsafety"`
	CILo     []float64 `json:"ciLo"`
	CIHi     []float64 `json:"ciHi"`
	Batches  uint64    `json:"batches"`
}

// testDoc builds a deterministic document with awkward float64s: tiny
// unsafety magnitudes like the paper's 1e-13 regime, values with no short
// decimal form, and exact powers of two.
func testDoc(seed uint64) curveDoc {
	d := curveDoc{Name: fmt.Sprintf("doc-%d", seed), Batches: 100 * seed}
	for i := uint64(0); i < 8; i++ {
		x := float64(seed*1000+i) / 3.0
		d.Times = append(d.Times, x)
		d.Unsafety = append(d.Unsafety, math.Exp(-x)*1e-13)
		d.CILo = append(d.CILo, math.Nextafter(d.Unsafety[i], 0))
		d.CIHi = append(d.CIHi, math.Nextafter(d.Unsafety[i], 1))
	}
	return d
}

// docBits renders every float with %b (mantissa·2^exp), so equality is
// bit-equality, not approximate.
func docBits(d curveDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d", d.Name, d.Batches)
	for _, s := range [][]float64{d.Times, d.Unsafety, d.CILo, d.CIHi} {
		for _, f := range s {
			fmt.Fprintf(&b, " %b", f)
		}
	}
	return b.String()
}

func openTest(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.Dir = dir
	cfg.Logf = t.Logf
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRoundTripBitIdentical is the %b golden test: a stored curve read
// back — same handle, after reopen, and through a follower — renders
// bit-identically to the original. encoding/json's shortest-round-trip
// float encoding is what makes the persistent tier semantically free.
func TestRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	want := make(map[string]string)
	for seed := uint64(1); seed <= 10; seed++ {
		d := testDoc(seed)
		key := fmt.Sprintf("hash-%d", seed)
		if err := s.Put(key, d); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		want[key] = docBits(d)
	}
	check := func(label string, get func(key string, v any) (bool, error)) {
		t.Helper()
		for key, bits := range want {
			var got curveDoc
			ok, err := get(key, &got)
			if err != nil || !ok {
				t.Fatalf("%s: Get(%s) = %v, %v", label, key, ok, err)
			}
			if docBits(got) != bits {
				t.Errorf("%s: %s read back with different bits\n got %s\nwant %s", label, key, docBits(got), bits)
			}
		}
	}
	check("same handle", s.Get)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{})
	check("after reopen", s2.Get)

	follower := openTest(t, dir, Config{ReadOnly: true})
	check("follower", follower.Get)
}

func TestGetMiss(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	var v curveDoc
	ok, err := s.Get("absent", &v)
	if err != nil || ok {
		t.Fatalf("Get(absent) = %v, %v; want false, nil", ok, err)
	}
	if s.Has("absent") {
		t.Error("Has(absent) = true")
	}
}

// TestTornTailTruncated proves the corrupt-tail discipline: garbage after
// the last valid frame is cut on writer open, every preceding record
// survives, and the segment accepts appends again.
func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"partial header", []byte{1, 2, 3}},
		{"declared length past EOF", func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b, 1<<20)
			return append(b, "short"...)
		}()},
		{"crc mismatch", func() []byte {
			payload := []byte(`{"key":"x","value":{}}`)
			b := make([]byte, 8+len(payload))
			binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(b[4:8], 0xdeadbeef)
			copy(b[8:], payload)
			return b
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Config{})
			d := testDoc(1)
			if err := s.Put("k1", d); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k2", testDoc(2)); err != nil {
				t.Fatal(err)
			}
			s.Close()

			segPath := filepath.Join(dir, segmentName)
			f, err := os.OpenFile(segPath, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2 := openTest(t, dir, Config{})
			st := s2.Stats()
			if st.TruncatedBytes != int64(len(tc.tail)) {
				t.Errorf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(tc.tail))
			}
			if st.Entries != 2 {
				t.Errorf("Entries = %d, want 2", st.Entries)
			}
			var got curveDoc
			if ok, err := s2.Get("k1", &got); !ok || err != nil {
				t.Fatalf("Get(k1) after truncation = %v, %v", ok, err)
			}
			if docBits(got) != docBits(d) {
				t.Error("k1 bits changed across truncation")
			}
			// The cut tail must not poison later appends.
			if err := s2.Put("k3", testDoc(3)); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3 := openTest(t, dir, Config{})
			if got := s3.Len(); got != 3 {
				t.Errorf("after re-append: %d entries, want 3", got)
			}
		})
	}
}

// TestSupersedeAndCompact: re-Putting a key leaves dead bytes; Compact
// reclaims them, keeps only the newest value per key, preserves insertion
// order, and the store reopens cleanly from the compacted segment.
func TestSupersedeAndCompact(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	for seed := uint64(1); seed <= 5; seed++ {
		if err := s.Put(fmt.Sprintf("k%d", seed), testDoc(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede k2 twice; the latest version must win.
	final := testDoc(22)
	if err := s.Put("k2", testDoc(12)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", final); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DeadBytes <= 0 {
		t.Fatalf("DeadBytes = %d after supersede, want > 0", st.DeadBytes)
	}
	before := st.SegmentBytes

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.DeadBytes != 0 {
		t.Errorf("DeadBytes = %d after compact, want 0", st.DeadBytes)
	}
	if st.SegmentBytes >= before {
		t.Errorf("segment %d bytes after compact, want < %d", st.SegmentBytes, before)
	}
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", st.Compactions)
	}
	wantKeys := []string{"k1", "k2", "k3", "k4", "k5"}
	if got := fmt.Sprint(s.Keys()); got != fmt.Sprint(wantKeys) {
		t.Errorf("Keys() = %v, want %v", s.Keys(), wantKeys)
	}
	var got curveDoc
	if ok, err := s.Get("k2", &got); !ok || err != nil {
		t.Fatalf("Get(k2) = %v, %v", ok, err)
	}
	if docBits(got) != docBits(final) {
		t.Error("k2 lost its newest value across compaction")
	}
	// Appends continue on the swapped handle, and a reopen sees everything.
	if err := s.Put("k6", testDoc(6)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTest(t, dir, Config{})
	if s2.Len() != 6 {
		t.Errorf("reopen after compact: %d entries, want 6", s2.Len())
	}
}

// TestAutoCompaction: once dead bytes pass the configured floor and exceed
// live bytes, Put compacts without being asked.
func TestAutoCompaction(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{CompactMinDead: 1})
	for i := 0; i < 8; i++ {
		if err := s.Put("same-key", testDoc(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no automatic compaction after 8 supersedes: %+v", st)
	}
	var got curveDoc
	if ok, err := s.Get("same-key", &got); !ok || err != nil {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if docBits(got) != docBits(testDoc(7)) {
		t.Error("auto-compaction did not keep the newest value")
	}
}

// TestWriterLockExcludesSecondWriter: one directory, one writer. Readers
// are always admitted.
func TestWriterLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	if _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writer Open = %v, want ErrLocked", err)
	}
	follower := openTest(t, dir, Config{ReadOnly: true})
	if !follower.ReadOnly() {
		t.Error("follower not read-only")
	}
	if err := follower.Put("k", testDoc(1)); !errors.Is(err, ErrReadOnly) {
		t.Errorf("follower Put = %v, want ErrReadOnly", err)
	}
	// Releasing the writer admits a new one.
	s.Close()
	s2 := openTest(t, dir, Config{})
	if err := s2.Put("k", testDoc(1)); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerSeesLiveAppends: a follower opened before any data arrives
// picks up the writer's Puts without reopening — including across a
// writer-side compaction that replaces the segment file under it.
func TestFollowerSeesLiveAppends(t *testing.T) {
	dir := t.TempDir()
	follower := openTest(t, dir, Config{ReadOnly: true}) // before the segment exists
	writer := openTest(t, dir, Config{})

	d1 := testDoc(1)
	if err := writer.Put("k1", d1); err != nil {
		t.Fatal(err)
	}
	var got curveDoc
	if ok, err := follower.Get("k1", &got); !ok || err != nil {
		t.Fatalf("follower Get(k1) = %v, %v", ok, err)
	}
	if docBits(got) != docBits(d1) {
		t.Error("follower read different bits than written")
	}

	// Compaction renames a new segment over the one the follower holds.
	if err := writer.Put("k1", testDoc(11)); err != nil {
		t.Fatal(err)
	}
	if err := writer.Put("k2", testDoc(2)); err != nil {
		t.Fatal(err)
	}
	if err := writer.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := writer.Put("k3", testDoc(3)); err != nil {
		t.Fatal(err)
	}
	if err := follower.Refresh(); err != nil {
		t.Fatalf("Refresh across compaction: %v", err)
	}
	if follower.Len() != 3 {
		t.Fatalf("follower sees %d entries after compaction, want 3", follower.Len())
	}
	if ok, err := follower.Get("k1", &got); !ok || err != nil {
		t.Fatalf("follower Get(k1) post-compact = %v, %v", ok, err)
	}
	if docBits(got) != docBits(testDoc(11)) {
		t.Error("follower read the superseded value after compaction")
	}
	if !follower.Has("k3") {
		t.Error("follower missing post-compaction append k3")
	}
}

// TestCorruptRecordFailsGet: bit rot inside a live record surfaces as a
// CRC error on read, never as silently wrong data.
func TestCorruptRecordFailsGet(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	if err := s.Put("k1", testDoc(1)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in place (offset 8 is inside the JSON).
	f, err := os.OpenFile(filepath.Join(dir, segmentName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, 12); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, 12); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var got curveDoc
	if _, err := s.Get("k1", &got); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Get on corrupted record = %v, want CRC error", err)
	}
}

// TestSkippedUndecodableFrame: a CRC-valid frame whose payload is not a
// usable record is skipped — the scan continues past it and later records
// survive.
func TestSkippedUndecodableFrame(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	if err := s.Put("k1", testDoc(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append a frame that checksums correctly but is not a record.
	payload := []byte(`"not a record"`)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	f, err := os.OpenFile(filepath.Join(dir, segmentName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir, Config{})
	st := s2.Stats()
	if st.SkippedRecords != 1 {
		t.Errorf("SkippedRecords = %d, want 1", st.SkippedRecords)
	}
	if st.TruncatedBytes != 0 {
		t.Errorf("TruncatedBytes = %d, want 0 (frame is CRC-valid)", st.TruncatedBytes)
	}
	if !s2.Has("k1") {
		t.Error("record before the skipped frame lost")
	}
	if err := s2.Put("k2", testDoc(2)); err != nil {
		t.Fatal(err)
	}
	if !s2.Has("k2") {
		t.Error("append after skipped frame lost")
	}
}

// TestTelemetryFamilies: the ahs_store_* families register and track.
func TestTelemetryFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), Config{Telemetry: reg})
	if err := s.Put("k1", testDoc(1)); err != nil {
		t.Fatal(err)
	}
	var v curveDoc
	if _, err := s.Get("k1", &v); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("absent", &v); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"ahs_store_puts_total 1",
		"ahs_store_gets_hit_total 1",
		"ahs_store_gets_miss_total 1",
		"ahs_store_entries 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEmptyAndBadInputs pins the small-print contract.
func TestEmptyAndBadInputs(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	if err := s.Put("", testDoc(1)); err == nil {
		t.Error("Put with empty key accepted")
	}
	if err := s.Put("k", func() {}); err == nil {
		t.Error("Put with unmarshalable value accepted")
	}
	s.Close()
	if err := s.Put("k", testDoc(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	var v curveDoc
	if _, err := s.Get("k", &v); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if _, err := Open(Config{}); err == nil {
		t.Error("Open without Dir accepted")
	}
}
