package resultstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openClaims(t *testing.T, dir, owner string, cfg ClaimsConfig) *Claims {
	t.Helper()
	cfg.Dir = dir
	cfg.Owner = owner
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c, err := OpenClaims(cfg)
	if err != nil {
		t.Fatalf("OpenClaims(%s, %s): %v", dir, owner, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

const testTTL = time.Minute

// TestClaimLifecycle covers the basic protocol: acquire, contend, renew,
// release, re-acquire — across two handles on one directory, which is the
// two-process shape minus fork.
func TestClaimLifecycle(t *testing.T) {
	dir := t.TempDir()
	a := openClaims(t, dir, "node-a", ClaimsConfig{URL: "http://a"})
	b := openClaims(t, dir, "node-b", ClaimsConfig{URL: "http://b"})

	sc := json.RawMessage(`{"name":"s1"}`)
	st, stole, err := a.Acquire("hash-1", 1, testTTL, sc)
	if err != nil || stole {
		t.Fatalf("a.Acquire = %+v, stole=%v, err=%v", st, stole, err)
	}
	if st.Owner != "node-a" || st.URL != "http://a" || st.Epoch != 1 {
		t.Fatalf("claim state %+v", st)
	}

	// b must lose and learn who holds it.
	held, stole, err := b.Acquire("hash-1", 1, testTTL, nil)
	if !errors.Is(err, ErrClaimHeld) {
		t.Fatalf("b.Acquire err = %v, want ErrClaimHeld", err)
	}
	if stole || held.Owner != "node-a" || held.URL != "http://a" {
		t.Fatalf("loser saw %+v, stole=%v", held, stole)
	}

	// Renewal by the owner extends and preserves the scenario payload.
	before := st.Expires
	time.Sleep(2 * time.Millisecond)
	lost, err := a.Renew([]string{"hash-1"}, 1, testTTL)
	if err != nil || len(lost) != 0 {
		t.Fatalf("a.Renew lost=%v err=%v", lost, err)
	}
	st2, ok, err := b.Get("hash-1")
	if err != nil || !ok {
		t.Fatalf("b.Get = %v, %v", ok, err)
	}
	if !st2.Expires.After(before) {
		t.Errorf("renew did not extend deadline: %v vs %v", st2.Expires, before)
	}
	if string(st2.Scenario) != string(sc) {
		t.Errorf("renew dropped scenario: %q", st2.Scenario)
	}

	// Renewing a key we don't own reports it lost, appends nothing.
	lost, err = b.Renew([]string{"hash-1", "never-claimed"}, 1, testTTL)
	if err != nil || len(lost) != 2 {
		t.Fatalf("b.Renew lost=%v err=%v, want both lost", lost, err)
	}

	// Release by a non-owner is a no-op; by the owner it frees the key.
	if err := b.Release("hash-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get("hash-1"); !ok {
		t.Fatal("non-owner release dropped the claim")
	}
	if err := a.Release("hash-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Get("hash-1"); ok {
		t.Fatal("owner release did not drop the claim")
	}

	// Now b can take it.
	if _, stole, err := b.Acquire("hash-1", 2, testTTL, nil); err != nil || stole {
		t.Fatalf("b.Acquire after release: stole=%v err=%v", stole, err)
	}
}

// TestClaimStealAfterExpiry is the crash-recovery path: an owner that
// stops renewing (kill -9) loses its claims to a peer once the TTL
// lapses, and the thief inherits the scenario payload for re-evaluation.
func TestClaimStealAfterExpiry(t *testing.T) {
	dir := t.TempDir()
	a := openClaims(t, dir, "node-a", ClaimsConfig{})
	b := openClaims(t, dir, "node-b", ClaimsConfig{URL: "http://b"})

	sc := json.RawMessage(`{"name":"doomed"}`)
	if _, _, err := a.Acquire("hash-x", 1, 10*time.Millisecond, sc); err != nil {
		t.Fatal(err)
	}
	a.Abandon() // kill -9: no release

	// Before expiry the claim still blocks.
	if _, _, err := b.Acquire("hash-x", 2, testTTL, nil); !errors.Is(err, ErrClaimHeld) {
		t.Fatalf("pre-expiry Acquire err = %v, want ErrClaimHeld", err)
	}
	time.Sleep(15 * time.Millisecond)
	st, stole, err := b.Acquire("hash-x", 2, testTTL, nil)
	if err != nil {
		t.Fatalf("post-expiry Acquire: %v", err)
	}
	if !stole {
		t.Error("post-expiry Acquire did not report a steal")
	}
	if st.Owner != "node-b" || st.Epoch != 2 {
		t.Fatalf("stolen claim state %+v", st)
	}
	if string(st.Scenario) != string(sc) {
		t.Errorf("steal lost the scenario payload: %q", st.Scenario)
	}

	// Renewal by the dead owner's identity (a restarted process reusing
	// the name would have a fresh handle) — simulate with a new handle.
	a2 := openClaims(t, dir, "node-a", ClaimsConfig{})
	lost, err := a2.Renew([]string{"hash-x"}, 1, testTTL)
	if err != nil || len(lost) != 1 {
		t.Fatalf("stale owner Renew lost=%v err=%v, want lost", lost, err)
	}
}

// TestClaimsTornTailTruncated: a peer that crashed mid-append leaves a
// torn frame; the next operation under the flock cuts it and appends
// cleanly after the valid prefix.
func TestClaimsTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	a := openClaims(t, dir, "node-a", ClaimsConfig{})
	if _, _, err := a.Acquire("hash-1", 1, testTTL, nil); err != nil {
		t.Fatal(err)
	}
	a.Close()

	segPath := filepath.Join(dir, claimsSegName)
	f, err := os.OpenFile(segPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising 100 bytes, followed by 3: torn mid-write.
	torn := make([]byte, 11)
	binary.LittleEndian.PutUint32(torn[0:4], 100)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b := openClaims(t, dir, "node-b", ClaimsConfig{})
	st, _, err := b.Acquire("hash-2", 1, testTTL, nil)
	if err != nil {
		t.Fatalf("Acquire over torn tail: %v", err)
	}
	if st.Owner != "node-b" {
		t.Fatalf("claim state %+v", st)
	}
	// The earlier claim survived the cut; the torn bytes did not. The
	// appended claim lands where the torn frame was, so the whole file
	// scans clean again.
	if _, ok, _ := b.Get("hash-1"); !ok {
		t.Error("pre-tear claim lost")
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	valid, recs, skipped := ScanClaims(data)
	if valid != int64(len(data)) || skipped != 0 {
		t.Errorf("segment still torn after repair: valid %d of %d bytes, %d skipped", valid, len(data), skipped)
	}
	if len(recs) != 2 {
		t.Errorf("segment holds %d records, want 2", len(recs))
	}

	// A fresh handle agrees with b's view.
	c := openClaims(t, dir, "node-c", ClaimsConfig{})
	snap, err := c.Snapshot()
	if err != nil || len(snap) != 2 {
		t.Fatalf("Snapshot = %d claims, err=%v; want 2", len(snap), err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestClaimsCompaction: churning claims past the dead-record threshold
// compacts the segment; peers follow the rename and agree on live state.
func TestClaimsCompaction(t *testing.T) {
	dir := t.TempDir()
	a := openClaims(t, dir, "node-a", ClaimsConfig{CompactMinRecords: 8})
	b := openClaims(t, dir, "node-b", ClaimsConfig{CompactMinRecords: 1 << 20})

	// b observes early state so its handle predates the compaction.
	if _, _, err := b.Acquire("keeper-b", 1, testTTL, nil); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("churn-%d", i)
		if _, _, err := a.Acquire(key, 1, testTTL, nil); err != nil {
			t.Fatal(err)
		}
		if err := a.Release(key); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := a.Acquire("keeper-a", 1, testTTL, json.RawMessage(`{"name":"k"}`)); err != nil {
		t.Fatal(err)
	}

	// Compaction happened: the segment holds only live claims.
	size := fileSize(t, filepath.Join(dir, claimsSegName))
	if size > 2048 {
		t.Errorf("segment %d bytes after churn; compaction did not run", size)
	}
	// b's stale handle reconciles through the rename.
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatalf("peer sees %d claims after compaction, want 2", len(snap))
	}
	st, ok, err := b.Get("keeper-a")
	if err != nil || !ok || string(st.Scenario) != `{"name":"k"}` {
		t.Fatalf("keeper-a after compaction: %+v ok=%v err=%v", st, ok, err)
	}
}

// TestEpochMonotonic: AdvanceEpoch persists a strictly increasing counter
// that survives process (handle) turnover.
func TestEpochMonotonic(t *testing.T) {
	dir := t.TempDir()
	if e, err := CurrentEpoch(dir); err != nil || e != 0 {
		t.Fatalf("virgin CurrentEpoch = %d, %v", e, err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		e, err := AdvanceEpoch(dir, "node-a")
		if err != nil {
			t.Fatal(err)
		}
		if e != last+1 {
			t.Fatalf("AdvanceEpoch = %d after %d", e, last)
		}
		last = e
		if cur, _ := CurrentEpoch(dir); cur != e {
			t.Fatalf("CurrentEpoch = %d after advancing to %d", cur, e)
		}
	}
}

// TestWriterInfoRoundTrip covers the heartbeat document.
func TestWriterInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadWriterInfo(dir); ok || err != nil {
		t.Fatalf("virgin ReadWriterInfo ok=%v err=%v", ok, err)
	}
	info := WriterInfo{Owner: "node-a", URL: "http://a", Epoch: 3, Expires: time.Now().Add(time.Second).UnixNano()}
	if err := WriteWriterInfo(dir, info); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadWriterInfo(dir)
	if err != nil || !ok || got != info {
		t.Fatalf("ReadWriterInfo = %+v, %v, %v", got, ok, err)
	}
	if got.Expired(time.Now()) {
		t.Error("fresh heartbeat reads expired")
	}
	if !got.Expired(time.Now().Add(2 * time.Second)) {
		t.Error("lapsed heartbeat reads live")
	}
}

// TestFollowerStalenessBound is the satellite regression. A follower
// already refreshed on a *miss*; the gap was the hit path — an index hit
// never consulted the disk, so a long-idle follower kept serving a
// superseded value from the pre-compaction segment indefinitely. With
// MaxStale, a hit after the bound reconciles first and serves the
// writer's current value.
func TestFollowerStalenessBound(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, Config{})
	v1, v2 := testDoc(1), testDoc(2)
	if err := w.Put("hash-1", v1); err != nil {
		t.Fatal(err)
	}

	bounded := openTest(t, dir, Config{ReadOnly: true, MaxStale: 20 * time.Millisecond})
	frozen := openTest(t, dir, Config{ReadOnly: true, MaxStale: -1})
	var got curveDoc
	for _, f := range []*Store{bounded, frozen} {
		if ok, err := f.Get("hash-1", &got); err != nil || !ok || docBits(got) != docBits(v1) {
			t.Fatalf("follower warm-up Get = %v, %v, bits match %v", ok, err, docBits(got) == docBits(v1))
		}
	}

	// The writer supersedes the value and compacts, replacing the
	// segment inode. Both followers still hold the old inode and an
	// index entry for hash-1 — a hit, so the miss-path refresh never
	// fires.
	if err := w.Put("hash-1", v2); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)

	// The bounded follower self-heals within MaxStale…
	if ok, err := bounded.Get("hash-1", &got); err != nil || !ok {
		t.Fatalf("bounded Get = %v, %v", ok, err)
	}
	if docBits(got) != docBits(v2) {
		t.Errorf("bounded follower still serves the superseded value after MaxStale")
	}
	// …while the unbounded one is the regression this test pins: it
	// serves the superseded value until an explicit Refresh.
	if ok, err := frozen.Get("hash-1", &got); err != nil || !ok {
		t.Fatalf("frozen Get = %v, %v", ok, err)
	}
	if docBits(got) != docBits(v1) {
		t.Fatalf("MaxStale<0 follower refreshed on a hit; bound is not the mechanism under test")
	}
	if err := frozen.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ok, err := frozen.Get("hash-1", &got); err != nil || !ok || docBits(got) != docBits(v2) {
		t.Fatalf("explicit Refresh did not heal the frozen follower: %v %v", ok, err)
	}
}

// TestLockContention is the satellite coverage: two writers racing Open
// on one directory — exactly one wins; the loser's error is typed, still
// matches ErrLocked, and names the holder's PID and owner. flock
// conflicts between two descriptors even in one process, which is what
// lets this run without fork.
func TestLockContention(t *testing.T) {
	dir := t.TempDir()
	winner, err := Open(Config{Dir: dir, Owner: "alpha", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer winner.Close()

	_, err = Open(Config{Dir: dir, Owner: "beta", Logf: t.Logf})
	if err == nil {
		t.Fatal("second writer Open succeeded; lock not exclusive")
	}
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("loser error %v does not match ErrLocked", err)
	}
	var held *LockHeldError
	if !errors.As(err, &held) {
		t.Fatalf("loser error %T is not *LockHeldError", err)
	}
	if held.HolderPID != os.Getpid() {
		t.Errorf("HolderPID = %d, want %d", held.HolderPID, os.Getpid())
	}
	if held.HolderOwner != "alpha" {
		t.Errorf("HolderOwner = %q, want alpha", held.HolderOwner)
	}
	for _, want := range []string{fmt.Sprint(os.Getpid()), "alpha"} {
		if !containsStr(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}

	// Releasing the winner frees the directory.
	if err := winner.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Dir: dir, Owner: "beta", Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open after release: %v", err)
	}
	s.Close()
}

func containsStr(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}

// TestPromoteAdoptsDirtyDir: Promote on a follower wins the freed lock,
// truncates a torn tail the dead writer left, and serves writes.
func TestPromoteAdoptsDirtyDir(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, Config{})
	if err := w.Put("hash-1", testDoc(1)); err != nil {
		t.Fatal(err)
	}
	follower := openTest(t, dir, Config{ReadOnly: true})

	w.Abandon() // kill -9: flock drops with the close

	// Leave a torn frame, as a writer dying mid-append would.
	f, err := os.OpenFile(filepath.Join(dir, segmentName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 10)
	binary.LittleEndian.PutUint32(torn[0:4], 500)
	binary.LittleEndian.PutUint32(torn[4:8], crc32.Checksum([]byte("x"), crcTable))
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if follower.ReadOnly() {
		t.Fatal("promoted store still read-only")
	}
	var v curveDoc
	if ok, err := follower.Get("hash-1", &v); err != nil || !ok {
		t.Fatalf("promoted Get(hash-1) = %v, %v", ok, err)
	}
	if err := follower.Put("hash-2", testDoc(2)); err != nil {
		t.Fatalf("promoted Put: %v", err)
	}
	// Promote on a writer is a no-op.
	if err := follower.Promote(); err != nil {
		t.Fatalf("second Promote: %v", err)
	}

	// A fresh reader agrees — the torn tail is gone, both docs intact.
	r := openTest(t, dir, Config{ReadOnly: true})
	for _, key := range []string{"hash-1", "hash-2"} {
		if ok, err := r.Get(key, &v); err != nil || !ok {
			t.Fatalf("reader Get(%s) = %v, %v", key, ok, err)
		}
	}
}
