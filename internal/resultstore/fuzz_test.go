package resultstore

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// FuzzStoreScan attacks the segment decoder with arbitrary bytes — the
// store reads these back at startup from a file possibly torn, truncated
// or bit-rotted by the crash it is recovering from. The contract matches
// the cluster journal's: malformed input is a cut or a skip, never a
// panic, and the reported valid prefix is self-consistent — rescanning it
// reproduces the identical outcome, which is what makes the writer's
// startup truncation sound.
//
// CI runs this in regression mode (f.Add seeds + testdata/fuzz entries);
// `make fuzz` explores with the mutation engine.
func FuzzStoreScan(f *testing.F) {
	frame := func(payload []byte) []byte {
		b := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, crcTable))
		copy(b[8:], payload)
		return b
	}
	good := frame([]byte(`{"key":"hash-1","value":{"name":"r","unsafety":[1e-13]}}`))
	second := frame([]byte(`{"key":"hash-2","value":[1,2.5,3]}`))
	undecodable := frame([]byte(`"crc fine, not a record"`))
	emptyKey := frame([]byte(`{"key":"","value":1}`))

	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte{}, good...), second...))
	f.Add(append(append([]byte{}, good...), 0xAA, 0xBB, 0xCC)) // trailing garbage
	f.Add(append(append([]byte{}, undecodable...), good...))   // skip then resume
	f.Add(emptyKey)
	corrupt := append([]byte{}, good...)
	corrupt[10] ^= 0x01
	f.Add(corrupt)
	huge := make([]byte, 16)
	huge[3] = 0xFF // declared length far beyond the buffer
	f.Add(huge)
	zero := frame(nil) // zero-length payload
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, records, skipped := ScanSegment(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		v2, r2, s2 := ScanSegment(data[:valid])
		if v2 != valid || len(r2) != len(records) || s2 != skipped {
			t.Fatalf("rescan of valid prefix diverged: (%d,%d,%d) vs (%d,%d,%d)",
				v2, len(r2), s2, valid, len(records), skipped)
		}
		for i, rec := range records {
			if rec.Key == "" {
				t.Fatalf("record %d has empty key", i)
			}
			if rec.Off < 0 || rec.Off+rec.Size > valid {
				t.Fatalf("record %d frame [%d,%d) outside valid prefix %d", i, rec.Off, rec.Off+rec.Size, valid)
			}
			if rec.ValueOff < rec.Off+8 || rec.ValueOff+rec.ValueLen > rec.Off+rec.Size {
				t.Fatalf("record %d value [%d,%d) outside its payload", i, rec.ValueOff, rec.ValueOff+rec.ValueLen)
			}
			// The located value bytes must be exactly the decodable JSON
			// value Get would return.
			var v any
			if err := json.Unmarshal(data[rec.ValueOff:rec.ValueOff+rec.ValueLen], &v); err != nil {
				t.Fatalf("record %d value bytes do not decode: %v", i, err)
			}
		}
	})
}

// FuzzClaimsScan attacks the claims-segment decoder the same way: every
// fleet member appends here under a short flock, and any of them can die
// mid-write, so ScanClaims must treat arbitrary trailing bytes as a cut
// or a skip, never a panic — and the valid prefix it reports is what the
// next appender truncates to, so rescanning that prefix must reproduce
// the identical outcome.
func FuzzClaimsScan(f *testing.F) {
	frame := func(payload []byte) []byte {
		b := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, crcTable))
		copy(b[8:], payload)
		return b
	}
	claim := frame([]byte(`{"key":"hash-1","owner":"node-a","url":"http://a","epoch":1,"op":"claim","expires":1754600000000000000,"scenario":{"name":"s"}}`))
	renew := frame([]byte(`{"key":"hash-1","owner":"node-a","epoch":1,"op":"renew","expires":1754600001000000000}`))
	release := frame([]byte(`{"key":"hash-1","owner":"node-a","op":"release","expires":1754600002000000000}`))
	undecodable := frame([]byte(`[1,2,3]`))
	missingOwner := frame([]byte(`{"key":"hash-1","op":"claim"}`))

	f.Add([]byte{})
	f.Add(claim)
	f.Add(append(append(append([]byte{}, claim...), renew...), release...))
	f.Add(append(append([]byte{}, claim...), 0x01, 0x02)) // torn tail
	f.Add(append(append([]byte{}, undecodable...), claim...))
	f.Add(missingOwner)
	corrupt := append([]byte{}, claim...)
	corrupt[12] ^= 0x80
	f.Add(corrupt)
	huge := make([]byte, 12)
	huge[3] = 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, records, skipped := ScanClaims(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		v2, r2, s2 := ScanClaims(data[:valid])
		if v2 != valid || len(r2) != len(records) || s2 != skipped {
			t.Fatalf("rescan of valid prefix diverged: (%d,%d,%d) vs (%d,%d,%d)",
				v2, len(r2), s2, valid, len(records), skipped)
		}
		for i, rec := range records {
			if rec.Record.Key == "" || rec.Record.Owner == "" || rec.Record.Op == "" {
				t.Fatalf("record %d missing required fields: %+v", i, rec.Record)
			}
			if rec.Off < 0 || rec.Off+rec.Size > valid {
				t.Fatalf("record %d frame [%d,%d) outside valid prefix %d", i, rec.Off, rec.Off+rec.Size, valid)
			}
			if len(rec.Record.Scenario) > 0 && !json.Valid(rec.Record.Scenario) {
				t.Fatalf("record %d carries invalid scenario JSON", i)
			}
		}
	})
}
