package resultstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The claims region of a store directory fences duplicate evaluation
// across the processes sharing it. Where results.seg records what has been
// computed, claims.seg records what is being computed and by whom: before
// evaluating a scenario, a fleet member writes a claim; peers that see a
// live claim for the same hash redirect to the owner instead of
// re-evaluating. Claims are heartbeat-renewed and carry a TTL, so a
// kill -9'd owner's claims expire and a survivor re-claims (a "steal") —
// the work is adopted, never lost and never duplicated among live members.
//
// On-disk layout (inside the store directory, next to results.seg):
//
//	claims.seg    append-only segment of CRC-framed claim records
//	claims.lock   flock'd around each mutation (multi-writer discipline)
//	epoch         the persisted fencing epoch, advanced on writer promotion
//	writer.json   the current writer's heartbeat (owner, URL, epoch, expiry)
//
// claims.seg shares results.seg's frame discipline (uint32-LE length |
// uint32-LE CRC-32C | JSON payload) but not its single-writer rule: every
// fleet member appends claims. Mutual exclusion is per operation — take
// the flock on claims.lock, reconcile the in-memory index with the file
// (including truncating a torn tail a crashed appender left), append, and
// release. flock dies with the process, so a member crashing inside an
// operation can never wedge the region.
//
// The epoch file is the fencing authority: it only ever increases, and it
// only changes under the results-segment writer flock (at startup and at
// promotion), so exactly one process can advance it. Writers reject result
// puts stamped with an older epoch — a resurrected or lagging member
// cannot overwrite state it no longer owns. See internal/fleet for the
// protocol that consumes these primitives.

// File names of the claims region inside a store directory.
const (
	claimsSegName  = "claims.seg"
	claimsLockName = "claims.lock"
	epochName      = "epoch"
	writerInfoName = "writer.json"
)

// Claim operations recorded in the segment.
const (
	opClaim   = "claim"
	opRenew   = "renew"
	opRelease = "release"
)

// ErrClaimHeld reports an Acquire that lost to a live, unexpired claim by
// another owner. The returned ClaimState names the holder.
var ErrClaimHeld = errors.New("resultstore: scenario is claimed by another owner")

// claimRecord is the JSON payload of one claims.seg frame.
type claimRecord struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	URL   string `json:"url,omitempty"`
	Epoch uint64 `json:"epoch"`
	Op    string `json:"op"`
	// Expires is the claim deadline in Unix nanoseconds; a claim past it
	// is dead and re-claimable.
	Expires int64 `json:"expires"`
	// Scenario is the claimed scenario's canonical JSON, carried on
	// opClaim records so any surviving member can re-evaluate adopted
	// work without the original submitter.
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

// ClaimState is the live state of one claim.
type ClaimState struct {
	Key      string
	Owner    string
	URL      string
	Epoch    uint64
	Expires  time.Time
	Scenario json.RawMessage
}

// Expired reports whether the claim's TTL has lapsed at now.
func (c ClaimState) Expired(now time.Time) bool { return now.After(c.Expires) }

// ClaimsConfig configures OpenClaims. Only Dir and Owner are required.
type ClaimsConfig struct {
	// Dir is the store directory (shared with the result segments).
	Dir string
	// Owner is this process's claim identity; Acquire and Release act on
	// its behalf.
	Owner string
	// URL is the owner's advertised base URL, recorded on claims so peers
	// can redirect readers to the evaluating instance.
	URL string
	// CompactMinRecords is the dead-record threshold for automatic
	// compaction (default 256): once more than this many dead records
	// exist and they outnumber live claims, the segment is rewritten.
	CompactMinRecords int
	// NoSync skips the per-append fsync (benchmarks only).
	NoSync bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Hook, when non-nil, is called at named internal sites
	// ("claims.pre-append", "claims.post-append", "claims.pre-sync",
	// "claims.compact.pre-rename") while the claims flock is held; chaos
	// tests crash a member there. Production leaves it nil.
	Hook func(site string)
}

// Claims is a handle on a store directory's claims region. All methods
// are safe for concurrent use within the process; cross-process mutual
// exclusion is the per-operation flock.
type Claims struct {
	cfg ClaimsConfig

	mu      sync.Mutex
	seg     *os.File
	index   map[string]ClaimState
	scanned int64
	live    int
	dead    int // superseded/released record count since last compaction
	closed  bool
}

// OpenClaims opens (creating if needed) the claims region of dir. Unlike
// the result store there is no writer/follower distinction: every opener
// may claim.
func OpenClaims(cfg ClaimsConfig) (*Claims, error) {
	if cfg.Dir == "" {
		return nil, errors.New("resultstore: ClaimsConfig.Dir is required")
	}
	if cfg.Owner == "" {
		return nil, errors.New("resultstore: ClaimsConfig.Owner is required")
	}
	if cfg.CompactMinRecords <= 0 {
		cfg.CompactMinRecords = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: claims dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(cfg.Dir, claimsSegName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: open claims segment: %w", err)
	}
	c := &Claims{cfg: cfg, seg: f, index: make(map[string]ClaimState)}
	return c, nil
}

// ScannedClaim is one valid frame found by ScanClaims.
type ScannedClaim struct {
	Record claimRecord
	Off    int64
	Size   int64
}

// ScanClaims walks framed claim records, returning the valid prefix
// length, the decoded records in order, and the count of CRC-valid but
// undecodable frames skipped. Scanning stops at the first torn or
// CRC-invalid frame. Exported for the fuzz target.
func ScanClaims(data []byte) (valid int64, records []ScannedClaim, skipped int) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return off, records, skipped
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecord || int64(n) > int64(len(rest)-8) {
			return off, records, skipped
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, records, skipped
		}
		var rec claimRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" || rec.Owner == "" || rec.Op == "" {
			skipped++
		} else {
			records = append(records, ScannedClaim{Record: rec, Off: off, Size: 8 + int64(n)})
		}
		off += 8 + int64(n)
		valid = off
	}
}

// withLock runs fn with the cross-process claims flock held and the
// in-memory index reconciled with the segment on disk (reopening it if a
// peer compacted, truncating a torn tail a crashed peer left). fn runs
// with c.mu held too.
func (c *Claims) withLock(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	lockPath := filepath.Join(c.cfg.Dir, claimsLockName)
	lock, err := acquireLockBlocking(lockPath)
	if err != nil {
		return err
	}
	defer releaseLock(lock)
	if err := c.reconcileLocked(); err != nil {
		return err
	}
	return fn()
}

// reconcileLocked brings the index up to date with the segment file; the
// claims flock and c.mu must be held.
func (c *Claims) reconcileLocked() error {
	segPath := filepath.Join(c.cfg.Dir, claimsSegName)
	replaced, err := fileReplaced(c.seg, segPath)
	if err != nil {
		return err
	}
	if replaced {
		f, err := os.OpenFile(segPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("resultstore: reopen claims segment: %w", err)
		}
		c.seg.Close()
		c.seg = f
		c.index = make(map[string]ClaimState)
		c.scanned, c.live, c.dead = 0, 0, 0
	}
	size, err := c.seg.Seek(0, 2)
	if err != nil {
		return fmt.Errorf("resultstore: seek claims segment: %w", err)
	}
	if size > c.scanned {
		data := make([]byte, size-c.scanned)
		if _, err := c.seg.ReadAt(data, c.scanned); err != nil {
			return fmt.Errorf("resultstore: read claims segment: %w", err)
		}
		valid, recs, _ := ScanClaims(data)
		for _, r := range recs {
			c.applyLocked(r.Record)
		}
		c.scanned += valid
		if c.scanned < size {
			// A peer crashed mid-append: cut its torn frame so our append
			// never lands after garbage. We hold the flock, so no live
			// peer is mid-write.
			cut := size - c.scanned
			c.cfg.Logf("resultstore: claims: dropping %d torn trailing bytes", cut)
			if err := c.seg.Truncate(c.scanned); err != nil {
				return fmt.Errorf("resultstore: truncate claims segment: %w", err)
			}
		}
	}
	return nil
}

// applyLocked folds one record into the index.
func (c *Claims) applyLocked(rec claimRecord) {
	switch rec.Op {
	case opRelease:
		if _, ok := c.index[rec.Key]; ok {
			delete(c.index, rec.Key)
			c.live--
			c.dead += 2 // the claim and its release are both dead
		} else {
			c.dead++
		}
	case opClaim, opRenew:
		prev, had := c.index[rec.Key]
		next := ClaimState{
			Key:      rec.Key,
			Owner:    rec.Owner,
			URL:      rec.URL,
			Epoch:    rec.Epoch,
			Expires:  time.Unix(0, rec.Expires),
			Scenario: rec.Scenario,
		}
		if rec.Op == opRenew && had {
			// Renewals extend the deadline but never resurrect the
			// scenario payload, which only rides the claim record.
			if len(next.Scenario) == 0 {
				next.Scenario = prev.Scenario
			}
		}
		if had {
			c.dead++
		} else {
			c.live++
		}
		c.index[rec.Key] = next
	}
}

// appendLocked frames and appends one record; the claims flock and c.mu
// must be held (reconcileLocked already ran).
func (c *Claims) appendLocked(rec claimRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultstore: encode claim: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	c.hook("claims.pre-append")
	if _, err := c.seg.WriteAt(frame, c.scanned); err != nil {
		return fmt.Errorf("resultstore: claims append: %w", err)
	}
	c.hook("claims.pre-sync")
	if !c.cfg.NoSync {
		if err := c.seg.Sync(); err != nil {
			return fmt.Errorf("resultstore: claims fsync: %w", err)
		}
	}
	c.scanned += int64(len(frame))
	c.applyLocked(rec)
	c.hook("claims.post-append")
	if c.dead > c.cfg.CompactMinRecords && c.dead > c.live {
		if err := c.compactLocked(); err != nil {
			c.cfg.Logf("resultstore: claims compaction failed: %v", err)
		}
	}
	return nil
}

// Acquire claims key for this owner under the given epoch, recording the
// scenario's canonical JSON for adoption. Outcomes:
//
//   - no claim, an expired claim, or our own claim → claimed (renewed);
//     stole reports whether an expired peer claim was taken over.
//   - a live claim by another owner → ErrClaimHeld; the returned state
//     names the holder and its advertised URL.
func (c *Claims) Acquire(key string, epoch uint64, ttl time.Duration, scenario json.RawMessage) (state ClaimState, stole bool, err error) {
	if key == "" {
		return ClaimState{}, false, errors.New("resultstore: empty claim key")
	}
	err = c.withLock(func() error {
		now := time.Now()
		cur, ok := c.index[key]
		if ok && cur.Owner != c.cfg.Owner && !cur.Expired(now) {
			state = cur
			return ErrClaimHeld
		}
		stole = ok && cur.Owner != c.cfg.Owner
		rec := claimRecord{
			Key:      key,
			Owner:    c.cfg.Owner,
			URL:      c.cfg.URL,
			Epoch:    epoch,
			Op:       opClaim,
			Expires:  now.Add(ttl).UnixNano(),
			Scenario: scenario,
		}
		if len(rec.Scenario) == 0 && ok {
			rec.Scenario = cur.Scenario
		}
		if err := c.appendLocked(rec); err != nil {
			return err
		}
		state = c.index[key]
		return nil
	})
	return state, stole, err
}

// Renew extends the deadline of claims this owner holds. Keys no longer
// owned (released, or stolen after expiry) are reported in lost rather
// than renewed — the caller should stop working on them.
func (c *Claims) Renew(keys []string, epoch uint64, ttl time.Duration) (lost []string, err error) {
	if len(keys) == 0 {
		return nil, nil
	}
	err = c.withLock(func() error {
		now := time.Now()
		for _, key := range keys {
			cur, ok := c.index[key]
			if !ok || cur.Owner != c.cfg.Owner {
				lost = append(lost, key)
				continue
			}
			rec := claimRecord{
				Key:     key,
				Owner:   c.cfg.Owner,
				URL:     c.cfg.URL,
				Epoch:   epoch,
				Op:      opRenew,
				Expires: now.Add(ttl).UnixNano(),
			}
			if err := c.appendLocked(rec); err != nil {
				return err
			}
		}
		return nil
	})
	return lost, err
}

// Release drops this owner's claim on key; a claim now held by someone
// else is left alone. Releasing an unclaimed key is a no-op.
func (c *Claims) Release(key string) error {
	return c.withLock(func() error {
		cur, ok := c.index[key]
		if !ok || cur.Owner != c.cfg.Owner {
			return nil
		}
		return c.appendLocked(claimRecord{
			Key:     key,
			Owner:   c.cfg.Owner,
			Op:      opRelease,
			Expires: time.Now().UnixNano(),
		})
	})
}

// Get returns the current claim on key, refreshing from disk first.
func (c *Claims) Get(key string) (ClaimState, bool, error) {
	var state ClaimState
	var ok bool
	err := c.withLock(func() error {
		state, ok = c.index[key]
		return nil
	})
	return state, ok, err
}

// Snapshot returns every live claim, refreshed from disk. Promotion uses
// it to find claimed-but-unfinished work to adopt.
func (c *Claims) Snapshot() ([]ClaimState, error) {
	var out []ClaimState
	err := c.withLock(func() error {
		out = make([]ClaimState, 0, len(c.index))
		for _, st := range c.index {
			out = append(out, st)
		}
		return nil
	})
	return out, err
}

// Len reports the number of live claims (as of the last reconciliation;
// no disk access).
func (c *Claims) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// compactLocked rewrites live claims into a fresh segment under the held
// flock, dropping released and superseded records. Peers detect the
// rename through fileReplaced on their next operation.
func (c *Claims) compactLocked() error {
	segPath := filepath.Join(c.cfg.Dir, claimsSegName)
	tmpPath := segPath + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	var off int64
	for _, st := range c.index {
		rec := claimRecord{
			Key:      st.Key,
			Owner:    st.Owner,
			URL:      st.URL,
			Epoch:    st.Epoch,
			Op:       opClaim,
			Expires:  st.Expires.UnixNano(),
			Scenario: st.Scenario,
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		copy(frame[8:], payload)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return err
		}
		off += int64(len(frame))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	c.hook("claims.compact.pre-rename")
	if err := os.Rename(tmpPath, segPath); err != nil {
		return err
	}
	syncDir(c.cfg.Dir)
	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: reopen compacted claims segment: %w", err)
	}
	c.seg.Close()
	c.seg = f
	// Rebuild state from the rewrite: the index is unchanged, only
	// geometry moved.
	c.scanned = off
	c.live = len(c.index)
	c.dead = 0
	c.cfg.Logf("resultstore: compacted claims on %s to %d live claims", c.cfg.Dir, c.live)
	return nil
}

// Close closes the claims handle. Held claims stay on disk and expire by
// TTL; a graceful shutdown should Release them first.
func (c *Claims) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.seg.Close()
}

// Abandon simulates kill -9 for chaos tests: the handle is closed with no
// release of held claims, which therefore linger until their TTL lapses —
// exactly the window fleet steal/adoption exists to cover.
func (c *Claims) Abandon() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.seg.Close()
}

// hook fires the configured fault-site hook, if any.
func (c *Claims) hook(site string) {
	if c.cfg.Hook != nil {
		c.cfg.Hook(site)
	}
}

// Epoch and writer-heartbeat files ------------------------------------------

// epochDoc is the persisted fencing epoch.
type epochDoc struct {
	Epoch uint64 `json:"epoch"`
	Owner string `json:"owner,omitempty"`
	// Advanced is the RFC3339 time of the last advance, for operators.
	Advanced string `json:"advanced,omitempty"`
}

// CurrentEpoch reads the persisted fencing epoch of dir; 0 when none has
// ever been advanced.
func CurrentEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, epochName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("resultstore: read epoch: %w", err)
	}
	var doc epochDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("resultstore: decode epoch: %w", err)
	}
	return doc.Epoch, nil
}

// AdvanceEpoch persists epoch+1 under owner's name and returns it. The
// write is atomic (tmp + fsync + rename). The caller MUST hold the
// directory's writer flock — that is what makes the epoch single-writer
// and monotonic; internal/fleet advances it only from a store that just
// won (or already holds) the writer lock.
func AdvanceEpoch(dir, owner string) (uint64, error) {
	cur, err := CurrentEpoch(dir)
	if err != nil {
		return 0, err
	}
	next := cur + 1
	doc := epochDoc{Epoch: next, Owner: owner, Advanced: time.Now().UTC().Format(time.RFC3339Nano)}
	if err := writeFileAtomic(dir, epochName, doc); err != nil {
		return 0, err
	}
	return next, nil
}

// WriterInfo is the current writer's heartbeat document, rewritten every
// heartbeat interval so followers can tell a live writer from a dead one
// and know where to forward result puts.
type WriterInfo struct {
	Owner string `json:"owner"`
	URL   string `json:"url,omitempty"`
	Epoch uint64 `json:"epoch"`
	// Expires is the heartbeat deadline in Unix nanoseconds; past it the
	// writer is presumed dead and followers race to promote.
	Expires int64 `json:"expires"`
}

// Expired reports whether the heartbeat has lapsed at now.
func (w WriterInfo) Expired(now time.Time) bool {
	return now.UnixNano() > w.Expires
}

// WriteWriterInfo atomically rewrites dir's writer heartbeat.
func WriteWriterInfo(dir string, info WriterInfo) error {
	return writeFileAtomic(dir, writerInfoName, info)
}

// ReadWriterInfo reads dir's writer heartbeat; ok is false when no writer
// has ever heartbeated.
func ReadWriterInfo(dir string) (WriterInfo, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, writerInfoName))
	if errors.Is(err, os.ErrNotExist) {
		return WriterInfo{}, false, nil
	}
	if err != nil {
		return WriterInfo{}, false, fmt.Errorf("resultstore: read writer info: %w", err)
	}
	var info WriterInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return WriterInfo{}, false, fmt.Errorf("resultstore: decode writer info: %w", err)
	}
	return info, true, nil
}

// writeFileAtomic writes v as JSON to dir/name via tmp + fsync + rename.
func writeFileAtomic(dir, name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, name)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}
