// Package ctmc converts exponential-only Stochastic Activity Networks into
// continuous-time Markov chains by reachability analysis and solves them
// numerically (transient solution by uniformization, steady state by power
// iteration).
//
// The paper evaluates its models by simulation; this package provides the
// exact counterpart on reduced state spaces, used to validate the simulator
// in internal/sim (and usable on its own for small AHS configurations).
package ctmc

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"ahs/internal/san"
)

// ErrStateSpaceTooLarge is returned when exploration exceeds MaxStates.
var ErrStateSpaceTooLarge = errors.New("ctmc: state space exceeds MaxStates")

// ErrStateBoundExceeded is returned when exploration exceeds a certified
// StateBound. Unlike ErrStateSpaceTooLarge (a budget), this is a
// consistency failure: the structural facts promised fewer states than
// reachability analysis found, so the facts or the model are wrong.
var ErrStateBoundExceeded = errors.New("ctmc: exploration exceeded the certified state bound")

// Arc is one rate transition of the generator matrix.
type Arc struct {
	To   int
	Rate float64
}

// Graph is the reachability graph of a SAN: a CTMC over stable markings
// (markings with no enabled instantaneous activity).
type Graph struct {
	// States holds one representative marking per state.
	States []*san.Marking
	// Initial is the index of the initial stable state.
	Initial int

	rows     [][]Arc
	exitRate []float64
}

// ExploreOptions configures state-space generation.
type ExploreOptions struct {
	// MaxStates bounds exploration; 0 means 200000.
	MaxStates int
	// MaxInstantDepth bounds the instantaneous-closure recursion;
	// 0 means 10000.
	MaxInstantDepth int
	// Absorb, when non-nil, marks matching states absorbing: their
	// outgoing transitions are dropped. Use it to compute first-passage
	// ("unsafety") measures as transient probabilities.
	Absorb san.Predicate
	// ExpectedStates, when positive, pre-sizes the state interning map —
	// typically from a certified structural.ModelFacts state-space bound,
	// avoiding rehash churn on large graphs. Purely an optimisation.
	ExpectedStates int
	// StateBound, when positive, asserts that exploration stays within a
	// certified bound (structural.ModelFacts.StateBound). Exceeding it
	// fails with ErrStateBoundExceeded: the facts were computed with a
	// mismatched absorption, or something is deeply wrong.
	StateBound int
}

// Explore builds the CTMC reachable from the model's initial marking.
func Explore(model *san.Model, opts ExploreOptions) (*Graph, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = 200_000
	}
	if opts.MaxInstantDepth == 0 {
		opts.MaxInstantDepth = 10_000
	}
	e := &explorer{model: model, opts: opts, index: make(map[string]int, opts.ExpectedStates)}

	init, err := e.stabilize(model.InitialMarking())
	if err != nil {
		return nil, err
	}
	if len(init) != 1 {
		return nil, fmt.Errorf("ctmc: initial marking stabilizes into %d states; probabilistic initialisation is not supported", len(init))
	}
	g := &Graph{Initial: 0}
	start, _ := e.intern(init[0].mk, g)

	// BFS over stable states.
	queue := []int{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		mk := g.States[s]
		if opts.Absorb != nil && opts.Absorb(mk) {
			continue // absorbing: no outgoing transitions
		}
		for i := 0; i < model.NumTimed(); i++ {
			act := model.Timed(i)
			if !act.EnabledIn(mk) {
				continue
			}
			rate, err := act.RateIn(mk)
			if err != nil {
				return nil, err
			}
			ws, err := san.CaseWeightsFor(act.Name, act.Cases, mk, nil)
			if err != nil {
				return nil, err
			}
			total := 0.0
			for _, w := range ws {
				total += w
			}
			for ci, w := range ws {
				if w == 0 {
					continue
				}
				succ := mk.Clone()
				san.FireTimed(act, ci, succ)
				stables, err := e.stabilize(succ)
				if err != nil {
					return nil, err
				}
				for _, st := range stables {
					idx, fresh := e.intern(st.mk, g)
					if fresh {
						if len(g.States) > opts.MaxStates {
							return nil, fmt.Errorf("%w (%d)", ErrStateSpaceTooLarge, opts.MaxStates)
						}
						if opts.StateBound > 0 && len(g.States) > opts.StateBound {
							return nil, fmt.Errorf("%w (%d)", ErrStateBoundExceeded, opts.StateBound)
						}
						queue = append(queue, idx)
					}
					g.addArc(s, idx, rate*(w/total)*st.prob)
				}
			}
		}
	}
	g.finish()
	return g, nil
}

type weightedMarking struct {
	mk   *san.Marking
	prob float64
}

type explorer struct {
	model *san.Model
	opts  ExploreOptions
	index map[string]int
}

// stabilize resolves the instantaneous closure of a marking into a
// distribution over stable markings, branching on probabilistic cases.
func (e *explorer) stabilize(mk *san.Marking) ([]weightedMarking, error) {
	var out []weightedMarking
	var walk func(m *san.Marking, prob float64, depth int) error
	walk = func(m *san.Marking, prob float64, depth int) error {
		if depth > e.opts.MaxInstantDepth {
			return fmt.Errorf("ctmc: instantaneous closure deeper than %d (livelock?)", e.opts.MaxInstantDepth)
		}
		// Find the highest-priority enabled instantaneous activity.
		best := -1
		for i := 0; i < e.model.NumInstant(); i++ {
			act := e.model.Instant(i)
			if !act.EnabledIn(m) {
				continue
			}
			if best < 0 || act.Priority < e.model.Instant(best).Priority {
				best = i
			}
		}
		if best < 0 {
			out = append(out, weightedMarking{mk: m, prob: prob})
			return nil
		}
		act := e.model.Instant(best)
		ws, err := san.CaseWeightsFor(act.Name, act.Cases, m, nil)
		if err != nil {
			return err
		}
		total := 0.0
		for _, w := range ws {
			total += w
		}
		for ci, w := range ws {
			if w == 0 {
				continue
			}
			next := m.Clone()
			san.FireInstant(act, ci, next)
			if err := walk(next, prob*(w/total), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(mk, 1, 0); err != nil {
		return nil, err
	}
	// Merge duplicates.
	merged := make([]weightedMarking, 0, len(out))
	for _, wm := range out {
		found := false
		for i := range merged {
			if merged[i].mk.Equal(wm.mk) {
				merged[i].prob += wm.prob
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, wm)
		}
	}
	return merged, nil
}

// intern returns the state index for a marking, adding it when new.
func (e *explorer) intern(mk *san.Marking, g *Graph) (int, bool) {
	key := MarkingKey(mk)
	if idx, ok := e.index[key]; ok {
		return idx, false
	}
	idx := len(g.States)
	e.index[key] = idx
	g.States = append(g.States, mk)
	g.rows = append(g.rows, nil)
	return idx, true
}

// MarkingKey serialises a marking into a canonical interning key. It is the
// state identity used by reachability exploration, shared with the model
// linter (internal/sanlint), which walks the same bounded marking graph.
func MarkingKey(mk *san.Marking) string {
	buf := make([]byte, 0, 64)
	model := mk.Model()
	for p := 0; p < model.NumPlaces(); p++ {
		buf = strconv.AppendInt(buf, int64(mk.Tokens(san.PlaceID(p))), 10)
		buf = append(buf, ',')
	}
	for p := 0; p < model.NumExtPlaces(); p++ {
		buf = append(buf, '[')
		for _, v := range mk.Ext(san.ExtPlaceID(p)) {
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ']')
	}
	return string(buf)
}

func (g *Graph) addArc(from, to int, rate float64) {
	if rate <= 0 {
		return
	}
	// Merge parallel arcs.
	for i := range g.rows[from] {
		if g.rows[from][i].To == to {
			g.rows[from][i].Rate += rate
			return
		}
	}
	g.rows[from] = append(g.rows[from], Arc{To: to, Rate: rate})
}

func (g *Graph) finish() {
	g.exitRate = make([]float64, len(g.States))
	for s, row := range g.rows {
		for _, a := range row {
			g.exitRate[s] += a.Rate
		}
	}
}

// NumStates returns the number of stable states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumTransitions returns the number of distinct rate transitions.
func (g *Graph) NumTransitions() int {
	n := 0
	for _, row := range g.rows {
		n += len(row)
	}
	return n
}

// Arcs returns the outgoing transitions of state s. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Arcs(s int) []Arc { return g.rows[s] }

// ExitRate returns the total outgoing rate of state s.
func (g *Graph) ExitRate(s int) float64 { return g.exitRate[s] }

// StatesWhere returns the indices of states whose marking satisfies pred.
func (g *Graph) StatesWhere(pred san.Predicate) []int {
	var out []int
	for i, mk := range g.States {
		if pred(mk) {
			out = append(out, i)
		}
	}
	return out
}

// TransientDistribution returns the state probability vector at time t,
// starting from the initial state, computed by uniformization with the
// given truncation tolerance (eps <= 0 defaults to 1e-12).
func (g *Graph) TransientDistribution(t, eps float64) ([]float64, error) {
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %v", t)
	}
	if eps <= 0 {
		eps = 1e-12
	}
	n := len(g.States)
	pi := make([]float64, n)
	pi[g.Initial] = 1
	if t == 0 {
		return pi, nil
	}

	lambda := 0.0
	for _, r := range g.exitRate {
		if r > lambda {
			lambda = r
		}
	}
	if lambda == 0 {
		return pi, nil // no activity anywhere: distribution is frozen
	}
	lambda *= 1.02 // keep self-loop probability positive (aperiodicity)

	lt := lambda * t
	kmax := int(lt + 10*math.Sqrt(lt) + 50)

	result := make([]float64, n)
	cur := pi
	next := make([]float64, n)
	accumulated := 0.0
	for k := 0; ; k++ {
		w := poissonPMF(lt, k)
		if w > 0 {
			for i, p := range cur {
				result[i] += w * p
			}
			accumulated += w
		}
		if accumulated >= 1-eps || k >= kmax {
			break
		}
		g.stepUniformized(cur, next, lambda)
		cur, next = next, cur
	}
	// Renormalise the truncation remainder.
	if accumulated > 0 && accumulated < 1 {
		for i := range result {
			result[i] /= accumulated
		}
	}
	return result, nil
}

// stepUniformized computes next = cur · P where P = I + Q/lambda.
func (g *Graph) stepUniformized(cur, next []float64, lambda float64) {
	for i := range next {
		next[i] = 0
	}
	for s, p := range cur {
		if p == 0 {
			continue
		}
		stay := 1 - g.exitRate[s]/lambda
		next[s] += p * stay
		for _, a := range g.rows[s] {
			next[a.To] += p * a.Rate / lambda
		}
	}
}

// TransientProbability returns the probability that the chain is in a state
// satisfying pred at time t. With absorbing target states (see
// ExploreOptions.Absorb) this is the first-passage CDF.
func (g *Graph) TransientProbability(t float64, pred san.Predicate) (float64, error) {
	dist, err := g.TransientDistribution(t, 0)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i, p := range dist {
		if p > 0 && pred(g.States[i]) {
			total += p
		}
	}
	return total, nil
}

// SteadyState returns the long-run state distribution computed by power
// iteration on the uniformized chain. It returns an error if the iteration
// does not converge within maxIter (0 means 1 million) to the given
// tolerance (<=0 means 1e-12). The result is meaningful only for models
// with a single recurrent class.
func (g *Graph) SteadyState(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter == 0 {
		maxIter = 1_000_000
	}
	n := len(g.States)
	lambda := 0.0
	for _, r := range g.exitRate {
		if r > lambda {
			lambda = r
		}
	}
	if lambda == 0 {
		pi := make([]float64, n)
		pi[g.Initial] = 1
		return pi, nil
	}
	lambda *= 1.02
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		g.stepUniformized(cur, next, lambda)
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if diff < tol {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("ctmc: steady state did not converge in %d iterations", maxIter)
}

// poissonPMF returns the Poisson(k; mean) probability computed in log space
// so that large means do not underflow prematurely.
func poissonPMF(mean float64, k int) float64 {
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(-mean + float64(k)*math.Log(mean) - lg)
}

// CheckGeneratorConsistency verifies structural invariants of the graph:
// non-negative rates, arcs pointing to valid states and exit rates matching
// row sums. It is used by tests and by cmd/ahs-statespace.
func (g *Graph) CheckGeneratorConsistency() error {
	for s, row := range g.rows {
		sum := 0.0
		for _, a := range row {
			if a.To < 0 || a.To >= len(g.States) {
				return fmt.Errorf("ctmc: state %d has arc to invalid state %d", s, a.To)
			}
			if a.Rate <= 0 {
				return fmt.Errorf("ctmc: state %d has non-positive arc rate %v", s, a.Rate)
			}
			sum += a.Rate
		}
		if math.Abs(sum-g.exitRate[s]) > 1e-9*math.Max(1, sum) {
			return fmt.Errorf("ctmc: state %d exit rate %v != row sum %v", s, g.exitRate[s], sum)
		}
	}
	return nil
}
