package ctmc

import (
	"errors"
	"fmt"
	"math"

	"ahs/internal/san"
)

// ErrUnreachableTarget is returned by MeanTimeTo when the target set cannot
// be reached from the initial state at all.
var ErrUnreachableTarget = errors.New("ctmc: target unreachable from initial state")

// canReach returns, for every state, whether the target set is reachable
// from it (backward breadth-first search over the transition graph).
func (g *Graph) canReach(target []bool) []bool {
	n := len(g.States)
	// Build the reverse adjacency once.
	reverse := make([][]int, n)
	for s, row := range g.rows {
		for _, a := range row {
			reverse[a.To] = append(reverse[a.To], s)
		}
	}
	reached := make([]bool, n)
	var queue []int
	for s := 0; s < n; s++ {
		if target[s] {
			reached[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, p := range reverse[s] {
			if !reached[p] {
				reached[p] = true
				queue = append(queue, p)
			}
		}
	}
	return reached
}

// MeanTimeTo returns the expected time until the chain first enters a state
// satisfying pred, starting from the initial state. It returns +Inf when
// the chain can wander into a subgraph from which the target is
// unreachable (the absorption probability is below one), and
// ErrUnreachableTarget when the target cannot be reached at all.
//
// The linear system t_i = 1/E_i + Σ_j P_ij·t_j over transient states is
// solved by Gauss-Seidel iteration; tol <= 0 defaults to 1e-12 relative,
// maxIter == 0 to one million sweeps.
func (g *Graph) MeanTimeTo(pred san.Predicate, tol float64, maxIter int) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter == 0 {
		maxIter = 1_000_000
	}
	n := len(g.States)
	target := make([]bool, n)
	anyTarget := false
	for i, mk := range g.States {
		if pred(mk) {
			target[i] = true
			anyTarget = true
		}
	}
	if target[g.Initial] {
		return 0, nil
	}
	if !anyTarget {
		return 0, ErrUnreachableTarget
	}
	reach := g.canReach(target)
	if !reach[g.Initial] {
		return 0, ErrUnreachableTarget
	}
	// If any state reachable from the initial state cannot reach the
	// target (e.g. an unrelated absorbing state), the first-passage time
	// is infinite with positive probability.
	if g.reachableCanMiss(target, reach) {
		return math.Inf(1), nil
	}

	t := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for s := 0; s < n; s++ {
			if target[s] {
				continue
			}
			exit := g.exitRate[s]
			if exit == 0 {
				// Deadlock outside the target: unreachable branch, since
				// reachableCanMiss returned false.
				return 0, fmt.Errorf("ctmc: transient deadlock state %d", s)
			}
			sum := 0.0
			for _, a := range g.rows[s] {
				if !target[a.To] {
					sum += a.Rate * t[a.To]
				}
			}
			next := (1 + sum) / exit
			delta := math.Abs(next - t[s])
			if rel := math.Abs(next); rel > 1 {
				delta /= rel
			}
			if delta > maxDelta {
				maxDelta = delta
			}
			t[s] = next
		}
		if maxDelta < tol {
			return t[g.Initial], nil
		}
	}
	return 0, fmt.Errorf("ctmc: mean-time-to solve did not converge in %d sweeps", maxIter)
}

// reachableCanMiss reports whether a state reachable from the initial state
// cannot reach the target.
func (g *Graph) reachableCanMiss(target, reach []bool) bool {
	n := len(g.States)
	seen := make([]bool, n)
	queue := []int{g.Initial}
	seen[g.Initial] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if !reach[s] {
			return true
		}
		if target[s] {
			continue
		}
		for _, a := range g.rows[s] {
			if !seen[a.To] {
				seen[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	return false
}

// AbsorptionProbability returns the probability that the chain, started in
// the initial state, ever enters a state satisfying pred (the t → ∞ limit
// of the transient probability). Solved by Gauss-Seidel on
// p_i = Σ_j P_ij·p_j with p = 1 on the target.
func (g *Graph) AbsorptionProbability(pred san.Predicate, tol float64, maxIter int) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter == 0 {
		maxIter = 1_000_000
	}
	n := len(g.States)
	target := make([]bool, n)
	for i, mk := range g.States {
		if pred(mk) {
			target[i] = true
		}
	}
	if target[g.Initial] {
		return 1, nil
	}
	p := make([]float64, n)
	for i := range p {
		if target[i] {
			p[i] = 1
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for s := 0; s < n; s++ {
			if target[s] || g.exitRate[s] == 0 {
				continue // absorbing: keeps its value (1 on target, 0 off)
			}
			sum := 0.0
			for _, a := range g.rows[s] {
				sum += a.Rate * p[a.To]
			}
			next := sum / g.exitRate[s]
			if d := math.Abs(next - p[s]); d > maxDelta {
				maxDelta = d
			}
			p[s] = next
		}
		if maxDelta < tol {
			return p[g.Initial], nil
		}
	}
	return 0, fmt.Errorf("ctmc: absorption-probability solve did not converge in %d sweeps", maxIter)
}
