package ctmc

import (
	"fmt"
	"math"
	"testing"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
)

// randomTokenNet generates a small random token-moving SAN: a handful of
// capacity-bounded places and activities that move a token between two
// places (or mint/burn at the boundary), all with exponential rates. Every
// such net has a finite state space, so the exact solver applies.
func randomTokenNet(r *rng.Stream, id int) (*san.Model, []san.PlaceID) {
	b := san.NewBuilder(fmt.Sprintf("random-%d", id))
	nPlaces := 2 + r.Intn(3) // 2..4 places
	caps := make([]int, nPlaces)
	places := make([]san.PlaceID, nPlaces)
	for i := range places {
		caps[i] = 1 + r.Intn(3) // capacity 1..3
		places[i] = b.Place(fmt.Sprintf("p%d", i), r.Intn(caps[i]+1))
	}
	nActs := 2 + r.Intn(4) // 2..5 activities
	for a := 0; a < nActs; a++ {
		rate := 0.5 + 3*r.Float64()
		kind := r.Intn(3)
		switch kind {
		case 0: // mint a token into a random place
			dst := r.Intn(nPlaces)
			b.Timed(san.TimedActivity{
				Name:    fmt.Sprintf("mint%d", a),
				Enabled: func(mk *san.Marking) bool { return mk.Tokens(places[dst]) < caps[dst] },
				Rate:    san.ConstRate(rate),
				Input:   san.Produce(places[dst], 1),
			})
		case 1: // burn a token from a random place
			src := r.Intn(nPlaces)
			b.Timed(san.TimedActivity{
				Name:    fmt.Sprintf("burn%d", a),
				Enabled: san.HasTokens(places[src], 1),
				Rate:    san.ConstRate(rate),
				Input:   san.Consume(places[src], 1),
			})
		default: // move a token between two random places
			src := r.Intn(nPlaces)
			dst := r.Intn(nPlaces)
			if dst == src {
				dst = (src + 1) % nPlaces
			}
			b.Timed(san.TimedActivity{
				Name: fmt.Sprintf("move%d", a),
				Enabled: func(mk *san.Marking) bool {
					return mk.Tokens(places[src]) >= 1 && mk.Tokens(places[dst]) < caps[dst]
				},
				Rate:  san.ConstRate(rate),
				Input: san.Move(places[src], places[dst], 1),
			})
		}
	}
	return b.MustBuild(), places
}

// TestDifferentialSimulatorVsExactOnRandomNets is a randomized differential
// test of the whole evaluation stack: for a batch of randomly generated
// token nets, the race-semantics simulator, the event-queue executor and
// the uniformization solver must agree on a transient token count.
func TestDifferentialSimulatorVsExactOnRandomNets(t *testing.T) {
	metaStream := rng.NewStream(2026)
	const horizon = 1.5
	const batches = 6000
	for modelID := 0; modelID < 12; modelID++ {
		m, places := randomTokenNet(metaStream, modelID)
		g, err := Explore(m, ExploreOptions{MaxStates: 10000})
		if err != nil {
			t.Fatalf("model %d: explore: %v", modelID, err)
		}
		if err := g.CheckGeneratorConsistency(); err != nil {
			t.Fatalf("model %d: %v", modelID, err)
		}
		// Exact expected token count of place 0 at the horizon.
		dist, err := g.TransientDistribution(horizon, 0)
		if err != nil {
			t.Fatalf("model %d: transient: %v", modelID, err)
		}
		exact := 0.0
		for s, p := range dist {
			exact += p * float64(g.States[s].Tokens(places[0]))
		}

		value := func(mk *san.Marking) float64 { return float64(mk.Tokens(places[0])) }
		estimate := func(run func(stream *rng.Stream, probe *sim.Probe) error) *stats.Welford {
			probe := &sim.Probe{Times: []float64{horizon}, Value: value}
			src := rng.NewSource(uint64(1000 + modelID))
			var acc stats.Welford
			for i := 0; i < batches; i++ {
				if err := run(src.Stream(uint64(i)), probe); err != nil {
					t.Fatalf("model %d: %v", modelID, err)
				}
				acc.Add(probe.Values[0])
			}
			return &acc
		}

		race, err := sim.NewRunner(m, sim.Options{MaxTime: horizon})
		if err != nil {
			t.Fatalf("model %d: %v", modelID, err)
		}
		raceAcc := estimate(func(s *rng.Stream, p *sim.Probe) error {
			_, err := race.Run(s, p)
			return err
		})
		general, err := sim.NewGeneralRunner(m, sim.Options{MaxTime: horizon})
		if err != nil {
			t.Fatalf("model %d: %v", modelID, err)
		}
		genAcc := estimate(func(s *rng.Stream, p *sim.Probe) error {
			_, err := general.Run(s, p)
			return err
		})

		for name, acc := range map[string]*stats.Welford{"race": raceAcc, "event-queue": genAcc} {
			tol := 5*acc.StdErr() + 1e-9
			if math.Abs(acc.Mean()-exact) > tol {
				t.Errorf("model %d (%d states): %s executor %v vs exact %v (tol %v)",
					modelID, g.NumStates(), name, acc.Mean(), exact, tol)
			}
		}
	}
}
