package ctmc

import (
	"errors"
	"math"
	"testing"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
)

func buildMM1K(k int, lambda, mu float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("mm1k")
	q := b.Place("queue", 0)
	b.Timed(san.TimedActivity{
		Name:    "arrive",
		Enabled: func(m *san.Marking) bool { return m.Tokens(q) < k },
		Rate:    san.ConstRate(lambda),
		Input:   san.Produce(q, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "depart",
		Enabled: san.HasTokens(q, 1),
		Rate:    san.ConstRate(mu),
		Input:   san.Consume(q, 1),
	})
	return b.MustBuild(), q
}

func TestExploreMM1K(t *testing.T) {
	m, _ := buildMM1K(4, 1, 2)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 5 {
		t.Fatalf("M/M/1/4 has %d states, want 5", g.NumStates())
	}
	// Interior states have 2 transitions, boundary states 1.
	if g.NumTransitions() != 8 {
		t.Fatalf("M/M/1/4 has %d transitions, want 8", g.NumTransitions())
	}
	if err := g.CheckGeneratorConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyStateMM1K(t *testing.T) {
	const k = 6
	const lambda, mu = 1.0, 2.0
	m, q := buildMM1K(k, lambda, mu)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.SteadyState(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: pi_i = rho^i (1-rho) / (1-rho^{k+1}).
	rho := lambda / mu
	norm := (1 - math.Pow(rho, k+1)) / (1 - rho)
	for i, mk := range g.States {
		level := mk.Tokens(q)
		want := math.Pow(rho, float64(level)) / norm
		if math.Abs(pi[i]-want) > 1e-8 {
			t.Errorf("pi[level %d] = %v, want %v", level, pi[i], want)
		}
	}
}

func TestTransientPureDeathExact(t *testing.T) {
	const rate = 0.7
	b := san.NewBuilder("death")
	alive := b.Place("alive", 1)
	b.Timed(san.TimedActivity{
		Name:    "die",
		Enabled: san.HasTokens(alive, 1),
		Rate:    san.ConstRate(rate),
		Input:   san.Consume(alive, 1),
	})
	m := b.MustBuild()
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []float64{0, 0.5, 1, 2, 5, 10} {
		got, err := g.TransientProbability(tp, san.HasTokens(alive, 1))
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-rate * tp)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P(alive at %v) = %v, want %v", tp, got, want)
		}
	}
}

func TestFirstPassageErlangViaAbsorbing(t *testing.T) {
	// Poisson counter absorbed at 3: P(absorbed by t) = Erlang(3) CDF.
	const rate = 2.0
	b := san.NewBuilder("erlang")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:    "arrive",
		Enabled: func(m *san.Marking) bool { return m.Tokens(c) < 3 },
		Rate:    san.ConstRate(rate),
		Input:   san.Produce(c, 1),
	})
	m := b.MustBuild()
	g, err := Explore(m, ExploreOptions{Absorb: san.HasTokens(c, 3)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []float64{0.1, 0.5, 1, 2} {
		got, err := g.TransientProbability(tp, san.HasTokens(c, 3))
		if err != nil {
			t.Fatal(err)
		}
		lt := rate * tp
		want := 1 - math.Exp(-lt)*(1+lt+lt*lt/2)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P(T<=%v) = %v, want %v", tp, got, want)
		}
	}
}

func TestInstantCaseBranchingProducesSplitArcs(t *testing.T) {
	// A timed activity drops a token into a trigger place; an instantaneous
	// activity routes it 30/70 into two terminal places.
	b := san.NewBuilder("branch")
	trig := b.Place("trig", 0)
	left := b.Place("left", 0)
	right := b.Place("right", 0)
	b.Timed(san.TimedActivity{
		Name:    "go",
		Enabled: san.AllOf(san.Not(san.HasTokens(left, 1)), san.Not(san.HasTokens(right, 1)), san.Not(san.HasTokens(trig, 1))),
		Rate:    san.ConstRate(4),
		Input:   san.Produce(trig, 1),
	})
	b.Instant(san.InstantActivity{
		Name:    "route",
		Enabled: san.HasTokens(trig, 1),
		Input:   san.Consume(trig, 1),
		Cases: []san.Case{
			{Weight: san.ConstWeight(0.3), Output: san.Produce(left, 1)},
			{Weight: san.ConstWeight(0.7), Output: san.Produce(right, 1)},
		},
	})
	m := b.MustBuild()
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 3 {
		t.Fatalf("expected 3 stable states, got %d", g.NumStates())
	}
	arcs := g.Arcs(g.Initial)
	if len(arcs) != 2 {
		t.Fatalf("expected 2 split arcs, got %d", len(arcs))
	}
	rates := map[int]float64{}
	for _, a := range arcs {
		rates[a.To] = a.Rate
	}
	var leftRate, rightRate float64
	for to, r := range rates {
		if g.States[to].Tokens(left) == 1 {
			leftRate = r
		}
		if g.States[to].Tokens(right) == 1 {
			rightRate = r
		}
	}
	if math.Abs(leftRate-1.2) > 1e-12 || math.Abs(rightRate-2.8) > 1e-12 {
		t.Fatalf("split rates %v / %v, want 1.2 / 2.8", leftRate, rightRate)
	}
	// Terminal states must be deadlocks with exit rate zero.
	for s := range g.States {
		if s != g.Initial && g.ExitRate(s) != 0 {
			t.Fatalf("terminal state %d has exit rate %v", s, g.ExitRate(s))
		}
	}
}

func TestExploreMaxStates(t *testing.T) {
	// Unbounded Poisson counter exceeds any state cap.
	b := san.NewBuilder("unbounded")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{Name: "arrive", Rate: san.ConstRate(1), Input: san.Produce(c, 1)})
	m := b.MustBuild()
	_, err := Explore(m, ExploreOptions{MaxStates: 100})
	if !errors.Is(err, ErrStateSpaceTooLarge) {
		t.Fatalf("expected ErrStateSpaceTooLarge, got %v", err)
	}
}

func TestExploreStateBound(t *testing.T) {
	m, _ := buildMM1K(4, 1, 2) // 5 states
	// A correct certified bound passes (and pre-sizing is harmless).
	g, err := Explore(m, ExploreOptions{StateBound: 5, ExpectedStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 5 {
		t.Fatalf("got %d states, want 5", g.NumStates())
	}
	// An understated bound is a consistency failure, not a budget stop.
	_, err = Explore(m, ExploreOptions{StateBound: 3})
	if !errors.Is(err, ErrStateBoundExceeded) {
		t.Fatalf("expected ErrStateBoundExceeded, got %v", err)
	}
	if errors.Is(err, ErrStateSpaceTooLarge) {
		t.Fatal("bound violation must be distinct from the MaxStates budget error")
	}
}

func TestTransientDistributionSumsToOne(t *testing.T) {
	m, _ := buildMM1K(5, 3, 2)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []float64{0, 0.3, 1, 10, 100} {
		dist, err := g.TransientDistribution(tp, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range dist {
			if p < -1e-15 {
				t.Fatalf("negative probability %v at t=%v", p, tp)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution at t=%v sums to %v", tp, sum)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m, q := buildMM1K(4, 1, 2)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.TransientDistribution(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.SteadyState(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dist {
		if math.Abs(dist[i]-pi[i]) > 1e-6 {
			t.Errorf("state %d (level %d): transient %v vs steady %v",
				i, g.States[i].Tokens(q), dist[i], pi[i])
		}
	}
}

func TestTransientRejectsNegativeTime(t *testing.T) {
	m, _ := buildMM1K(3, 1, 1)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.TransientDistribution(-1, 0); err == nil {
		t.Fatal("expected error for negative time")
	}
}

func TestStatesWhere(t *testing.T) {
	m, q := buildMM1K(4, 1, 1)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full := g.StatesWhere(san.HasTokens(q, 4))
	if len(full) != 1 {
		t.Fatalf("expected exactly one full state, got %d", len(full))
	}
	all := g.StatesWhere(func(*san.Marking) bool { return true })
	if len(all) != g.NumStates() {
		t.Fatal("StatesWhere(true) must return all states")
	}
}

// TestSimulatorMatchesCTMCOnMM1K is the cross-validation anchoring the whole
// stack: the race-semantics simulator and the uniformization solver must
// agree on a transient measure.
func TestSimulatorMatchesCTMCOnMM1K(t *testing.T) {
	const k = 5
	const lambda, mu = 2.0, 1.5
	const horizon = 3.0
	m, q := buildMM1K(k, lambda, mu)

	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantFull, err := g.TransientProbability(horizon, san.HasTokens(q, k))
	if err != nil {
		t.Fatal(err)
	}

	r, err := sim.NewRunner(m, sim.Options{MaxTime: horizon})
	if err != nil {
		t.Fatal(err)
	}
	probe := &sim.Probe{
		Times: []float64{horizon},
		Value: func(mk *san.Marking) float64 {
			if mk.Tokens(q) == k {
				return 1
			}
			return 0
		},
	}
	src := rng.NewSource(42)
	var acc stats.Welford
	const batches = 20000
	for i := 0; i < batches; i++ {
		if _, err := r.Run(src.Stream(uint64(i)), probe); err != nil {
			t.Fatal(err)
		}
		acc.Add(probe.Values[0])
	}
	tol := 5 * acc.StdErr()
	if math.Abs(acc.Mean()-wantFull) > tol {
		t.Fatalf("simulator %v vs ctmc %v (tol %v)", acc.Mean(), wantFull, tol)
	}
}

func TestPoissonPMFNormalisation(t *testing.T) {
	for _, mean := range []float64{0.5, 5, 100, 2000} {
		sum := 0.0
		kmax := int(mean + 12*math.Sqrt(mean) + 30)
		for k := 0; k <= kmax; k++ {
			p := poissonPMF(mean, k)
			if p < 0 {
				t.Fatalf("negative pmf at mean=%v k=%d", mean, k)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pmf(mean=%v) sums to %v", mean, sum)
		}
	}
	if poissonPMF(0, 0) != 1 || poissonPMF(0, 3) != 0 {
		t.Fatal("degenerate Poisson(0) pmf wrong")
	}
}

func BenchmarkTransientMM1K(b *testing.B) {
	m, _ := buildMM1K(20, 3, 2)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TransientDistribution(10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSteadyStateNonConvergence(t *testing.T) {
	m, _ := buildMM1K(4, 1, 2)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SteadyState(1e-15, 2); err == nil {
		t.Fatal("expected non-convergence error with 2 iterations")
	}
}

func TestSteadyStateFrozenChain(t *testing.T) {
	// A model whose single activity is never enabled has no dynamics: the
	// steady state is the initial state.
	b := san.NewBuilder("frozen")
	p := b.Place("p", 0)
	b.Timed(san.TimedActivity{
		Name:    "never",
		Enabled: san.HasTokens(p, 1),
		Rate:    san.ConstRate(1),
		Input:   san.Consume(p, 1),
	})
	m := b.MustBuild()
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.SteadyState(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi[g.Initial] != 1 {
		t.Fatalf("frozen chain steady state %v", pi)
	}
}
