package ctmc

import (
	"errors"
	"math"
	"testing"

	"ahs/internal/san"
)

// buildErlangChain returns a pure-birth chain absorbed at k.
func buildErlangChain(k int, rate float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("erlang")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:    "step",
		Enabled: func(m *san.Marking) bool { return m.Tokens(c) < k },
		Rate:    san.ConstRate(rate),
		Input:   san.Produce(c, 1),
	})
	return b.MustBuild(), c
}

func TestMeanTimeToErlang(t *testing.T) {
	// Mean first-passage of a pure-birth chain to k is k/rate exactly.
	const k, rate = 5, 2.0
	m, c := buildErlangChain(k, rate)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.MeanTimeTo(san.HasTokens(c, k), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(k) / rate
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MTTA %v, want %v", got, want)
	}
}

func TestMeanTimeToMM1KFullBuffer(t *testing.T) {
	// Busy-cycle first passage 0 -> K of an M/M/1/K queue; verified via
	// the standard recursion m_i = mean passage time from i to i+1:
	// m_0 = 1/λ, m_i = 1/λ + (μ/λ)·m_{i-1}; MTTA = Σ m_i.
	const k = 5
	const lambda, mu = 1.0, 2.0
	m, q := buildMM1K(k, lambda, mu)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.MeanTimeTo(san.HasTokens(q, k), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	mi := 0.0
	for i := 0; i < k; i++ {
		if i == 0 {
			mi = 1 / lambda
		} else {
			mi = 1/lambda + (mu/lambda)*mi
		}
		want += mi
	}
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("MTTA %v, want %v", got, want)
	}
}

func TestMeanTimeToTargetAtStart(t *testing.T) {
	m, c := buildErlangChain(3, 1)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.MeanTimeTo(san.HasTokens(c, 0), 0, 0)
	if err != nil || got != 0 {
		t.Fatalf("MTTA to initial state = %v, %v", got, err)
	}
}

func TestMeanTimeToUnreachable(t *testing.T) {
	m, c := buildErlangChain(3, 1)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.MeanTimeTo(san.HasTokens(c, 99), 0, 0); !errors.Is(err, ErrUnreachableTarget) {
		t.Fatalf("expected ErrUnreachableTarget, got %v", err)
	}
}

func TestMeanTimeToInfiniteWhenMissable(t *testing.T) {
	// Branching chain: from the start, one case goes to a "good" absorbing
	// state, the other to a "bad" one; mean time to "good" is infinite.
	b := san.NewBuilder("branch")
	good := b.Place("good", 0)
	bad := b.Place("bad", 0)
	start := b.Place("start", 1)
	b.Timed(san.TimedActivity{
		Name:    "go",
		Enabled: san.HasTokens(start, 1),
		Rate:    san.ConstRate(1),
		Input:   san.Consume(start, 1),
		Cases: []san.Case{
			{Weight: san.ConstWeight(0.5), Output: san.Produce(good, 1)},
			{Weight: san.ConstWeight(0.5), Output: san.Produce(bad, 1)},
		},
	})
	m := b.MustBuild()
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.MeanTimeTo(san.HasTokens(good, 1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("MTTA %v, want +Inf", got)
	}
	// And the absorption probability is exactly one half.
	p, err := g.AbsorptionProbability(san.HasTokens(good, 1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("absorption probability %v, want 0.5", p)
	}
}

func TestAbsorptionProbabilityCertainEvent(t *testing.T) {
	m, c := buildErlangChain(4, 3)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.AbsorptionProbability(san.HasTokens(c, 4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("absorption probability %v, want 1", p)
	}
	// Already satisfied at start.
	p, err = g.AbsorptionProbability(san.HasTokens(c, 0), 0, 0)
	if err != nil || p != 1 {
		t.Fatalf("trivial absorption = %v, %v", p, err)
	}
}

func TestMeanTimeToAgreesWithTransientTail(t *testing.T) {
	// For a certain absorbing event, MTTA = ∫ (1 - F(t)) dt; approximate
	// the integral from the uniformization CDF and compare.
	const k, rate = 3, 1.5
	m, c := buildErlangChain(k, rate)
	g, err := Explore(m, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	target := san.HasTokens(c, k)
	mtta, err := g.MeanTimeTo(target, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	integral := 0.0
	const dt = 0.01
	for x := 0.0; x < 40; x += dt {
		cdf, err := g.TransientProbability(x+dt/2, target)
		if err != nil {
			t.Fatal(err)
		}
		integral += (1 - cdf) * dt
	}
	if math.Abs(integral-mtta) > 0.01*mtta {
		t.Fatalf("MTTA %v vs integral of survival %v", mtta, integral)
	}
}
