package analysis

// This file implements the vet "unitchecker" wire protocol on the standard
// library, so cmd/ahs-vet can be passed to `go vet -vettool=...`. The
// protocol (defined by cmd/go/internal/work and mirrored from
// golang.org/x/tools/go/analysis/unitchecker, which we cannot depend on):
//
//  1. `tool -V=full` prints a version line used as the tool's build ID.
//  2. `tool -flags` prints a JSON array describing the tool's flags, which
//     cmd/go uses to split `go vet` arguments into flags and packages.
//  3. `tool [flags] <unit>.cfg` analyzes one package unit. The cfg file is a
//     JSON description of the unit: its Go files, the mapping from import
//     paths to export-data files produced by the compiler, and where to
//     write the (for us, empty) facts file.
//
// Diagnostics go to stderr as "file:line:col: analyzer: message" and the
// process exits 2, which is what makes `go vet` fail the build; with -json
// they go to stdout as JSON and the exit status is 0.

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// unitConfig mirrors the JSON structure cmd/go writes to <unit>.cfg. Field
// names are part of the protocol.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point for cmd/ahs-vet. It parses the protocol flags,
// dispatches the requested action, and exits; it never returns.
func VetMain(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	progname = strings.TrimSuffix(progname, ".exe")

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full includes a build ID)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON on stdout instead of text on stderr")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" check: "+a.Doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}

	if *versionFlag != "" {
		// cmd/go derives the vet tool's content ID from this exact shape.
		fmt.Printf("%s version devel comments-go-here buildID=gibberish\n", progname)
		os.Exit(0)
	}
	if *flagsFlag {
		printFlagDefs(fs)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: this tool implements the `go vet` unit-checker protocol and expects a single *.cfg argument.\n", progname)
		fmt.Fprintf(os.Stderr, "Run it as: go vet -vettool=$(command -v %s) ./...\n", progname)
		os.Exit(1)
	}

	active := analyzers[:0:0]
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	diags, err := runUnit(args[0], active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(emit(os.Stdout, os.Stderr, diags, *jsonFlag))
}

// printFlagDefs writes the -flags JSON that cmd/go uses to recognise which
// command-line arguments belong to the vet tool.
func printFlagDefs(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		defs = append(defs, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(defs)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// unitDiagnostic pairs a finding with its analyzer and resolved position.
type unitDiagnostic struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// errTypecheckSucceed signals that type checking failed but the cfg asked for
// silent success (cmd/go sets SucceedOnTypecheckFailure when the compiler
// will report the same errors itself).
var errTypecheckSucceed = fmt.Errorf("typecheck failed, exiting 0 per cfg")

func runUnit(cfgPath string, analyzers []*Analyzer) ([]unitDiagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// The facts file must exist even though this suite exports no facts:
	// cmd/go records it as a build output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency units are analyzed only for facts; we have none.
		return nil, nil
	}

	diags, err := analyzeUnit(cfg, analyzers)
	if err == errTypecheckSucceed {
		return nil, nil
	}
	return diags, err
}

func analyzeUnit(cfg *unitConfig, analyzers []*Analyzer) ([]unitDiagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, errTypecheckSucceed
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path has already been resolved through ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped // resolve vendoring and test variants
			}
			return compilerImporter.Import(importPath)
		}),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		Error:     func(error) {}, // collect as many results as possible
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	if _, err := tconf.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, errTypecheckSucceed
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	suppressed := suppressions(fset, files)
	var diags []unitDiagnostic
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Fset:      fset,
			Files:     files,
			PkgPath:   cfg.ImportPath,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				posn := fset.Position(d.Pos)
				if suppressed[suppressKey{posn.Filename, posn.Line, a.Name}] {
					return
				}
				diags = append(diags, unitDiagnostic{
					Analyzer: a.Name,
					Posn:     posn,
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Posn, diags[j].Posn
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return diags, nil
}

// emit writes diagnostics in the requested format and returns the process
// exit code: `go vet` interprets a non-zero exit as "findings or failure",
// while JSON consumers expect 0 with the findings on stdout.
func emit(stdout, stderr io.Writer, diags []unitDiagnostic, asJSON bool) int {
	if asJSON {
		// Shape: {"<analyzer>": [{"posn": "...", "message": "..."}]}, matching
		// the per-package objects `go vet -json` aggregates.
		grouped := make(map[string][]map[string]string)
		for _, d := range diags {
			grouped[d.Analyzer] = append(grouped[d.Analyzer], map[string]string{
				"posn":    d.Posn.String(),
				"message": d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		enc.Encode(grouped)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", d.Posn, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
