package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between two computed floating-point values.
//
// Probabilities, rates and case weights in this codebase are accumulated
// floats; exact equality between two computed values is almost never what the
// model means (sums of weights land near 1, not at 1). Comparisons must use
// an epsilon or math.Float64bits.
//
// Comparisons against a compile-time constant (p == 0, w != 1) are exempt:
// they express "was this ever assigned" guards that are exact by
// construction and idiomatic throughout the solvers. Also exempt: the x != x
// NaN test, the comparator tiebreak idiom
// `if a != b { return a < b }`, and test files, where asserting exact
// propagation of a parsed or copied value is the point of the test.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between two computed floating-point values (use an epsilon or math.Float64bits)",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		tiebreaks := comparatorTiebreaks(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pass, cmp.X) && !isFloatExpr(pass, cmp.Y) {
				return true
			}
			if isConstExpr(pass, cmp.X) || isConstExpr(pass, cmp.Y) {
				return true
			}
			if exprString(pass.Fset, cmp.X) == exprString(pass.Fset, cmp.Y) {
				return true // x != x is the NaN test
			}
			if tiebreaks[cmp] {
				return true
			}
			pass.Reportf(cmp.OpPos, "floating-point %s between two computed values: compare with an epsilon or math.Float64bits", cmp.Op)
			return true
		})
	}
	return nil
}

// comparatorTiebreaks returns the `a != b` conditions of the sort-comparator
// idiom `if a != b { return a < b }`: the inequality only dispatches to an
// exact float ordering of the same operands, so it is not an equality bug.
func comparatorTiebreaks(fset *token.FileSet, file *ast.File) map[*ast.BinaryExpr]bool {
	out := make(map[*ast.BinaryExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return true
		}
		for _, stmt := range ifs.Body.List {
			ret, ok := stmt.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			ord, ok := ret.Results[0].(*ast.BinaryExpr)
			if !ok {
				continue
			}
			switch ord.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
			default:
				continue
			}
			cx, cy := exprString(fset, cond.X), exprString(fset, cond.Y)
			ox, oy := exprString(fset, ord.X), exprString(fset, ord.Y)
			if (cx == ox && cy == oy) || (cx == oy && cy == ox) {
				out[cond] = true
			}
		}
		return true
	})
	return out
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
