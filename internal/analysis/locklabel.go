package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockLabelAnalyzer flags telemetry calls whose label values are not
// compile-time constants.
//
// Metric label values index live time-series families: every distinct value
// materialises a new child that lives for the process lifetime and is
// scraped forever after. A computed label — a formatted job ID, an error
// string, a marking summary — therefore turns a bounded family into an
// unbounded one, and the registry's lock-protected family maps degrade with
// cardinality. Labels must be locked down to a fixed vocabulary: string
// literals, named constants, or values the type checker can fold.
//
// Flagged calls:
//
//   - CounterVec/GaugeVec/HistogramVec.With(values...) — every value
//   - Sink.Count(metric, label) and Sink.Observe(metric, label, v) — the
//     label argument (the metric key is checked too: it names the family)
//
// Exempt: internal/telemetry itself (the collector fans bounded strategy
// labels through variables by design), test files, and sites carrying an
// //ahsvet:ignore locklabel directive with a reason — appropriate when a
// variable provably ranges over a small closed set, e.g. a strategy code.
var LockLabelAnalyzer = &Analyzer{
	Name: "locklabel",
	Doc:  "flag telemetry label values that are not compile-time constants (unbounded label cardinality)",
	Run:  runLockLabel,
}

// telemetryPkgSuffix identifies the instrumentation package, exempt as the
// one place allowed to route labels through variables.
const telemetryPkgSuffix = "internal/telemetry"

func runLockLabel(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, telemetryPkgSuffix) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isTelemetryMethod(fn) {
				return true
			}
			var labels []ast.Expr
			switch fn.Name() {
			case "With":
				labels = call.Args
			case "Count", "Observe":
				// (metric, label, ...) — both strings key the family.
				if len(call.Args) >= 2 {
					labels = call.Args[:2]
				}
			}
			for _, arg := range labels {
				if isConstExpr(pass, arg) {
					continue
				}
				pass.Reportf(arg.Pos(), "non-constant telemetry label passed to %s: computed label values create unbounded metric cardinality; use a fixed vocabulary (or //ahsvet:ignore locklabel with a reason if the value ranges over a closed set)", fn.Name())
			}
			return true
		})
	}
	return nil
}

// isTelemetryMethod reports whether fn is one of the label-taking methods of
// the internal/telemetry package: the vec With constructors or the Sink
// interface's Count/Observe.
func isTelemetryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), telemetryPkgSuffix) {
		return false
	}
	switch obj.Name() {
	case "CounterVec", "GaugeVec", "HistogramVec":
		return fn.Name() == "With"
	case "Sink":
		return fn.Name() == "Count" || fn.Name() == "Observe"
	}
	return false
}
