// Package analysis is a project-specific static-analysis suite for the AHS
// codebase, modelled on the golang.org/x/tools/go/analysis API but built
// entirely on the standard library's go/ast and go/types (this module is
// dependency-free by policy).
//
// Three analyzers encode correctness rules the simulator's statistical
// guarantees depend on:
//
//   - ahsrand: math/rand's global source is non-deterministic under
//     parallelism; all randomness must flow through internal/rng streams.
//   - ctxloop: trajectory/batch loops must consult their context, or
//     cancellation requests stall for an entire estimation round.
//   - floateq: ==/!= on computed probabilities is almost always a latent
//     bug; comparisons must use an epsilon or exact bit patterns.
//   - locklabel: telemetry label values must be compile-time constants;
//     computed labels create unbounded metric cardinality.
//
// The suite runs under the standard toolchain as
//
//	go vet -vettool=$(command -v ahs-vet) ./...
//
// via the unitchecker wire protocol implemented in unitchecker.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring the x/tools shape so the
// analyzers port trivially if the dependency policy ever changes.
type Analyzer struct {
	// Name is the vet flag and diagnostic prefix for this analyzer.
	Name string
	// Doc is the one-paragraph description shown by -flags help.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees.
	Files []*ast.File
	// PkgPath is the package's import path.
	PkgPath string
	// TypesInfo holds type-checker results. It is always non-nil but may be
	// sparsely populated when type checking partially failed; analyzers
	// must degrade gracefully on missing entries.
	TypesInfo *types.Info
	// Report delivers a diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned within the package's file set.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{AHSRandAnalyzer, CtxLoopAnalyzer, FloatEqAnalyzer, LockLabelAnalyzer}
}

// isTestFile reports whether the file is a _test.go file. ctxloop and
// floateq skip tests: deadline-bounded polling loops and exact-propagation
// assertions are legitimate there.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// suppressKey identifies one (file line, analyzer) pair silenced by an
// ahsvet:ignore comment.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions scans comments of the form
//
//	//ahsvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// and returns the set of (line, analyzer) pairs they silence. A directive
// applies to findings on its own line (end-of-line placement) and on the
// following line (placement above the flagged statement). The reason text is
// free-form but expected: a suppression without one invites deletion.
func suppressions(fset *token.FileSet, files []*ast.File) map[suppressKey]bool {
	out := make(map[suppressKey]bool)
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "ahsvet:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "ahsvet:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					out[suppressKey{pos.Filename, pos.Line, name}] = true
					out[suppressKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}
