package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fakeTelemetrySrc is a minimal stand-in for ahs/internal/telemetry: the
// source importer behind runSrc cannot resolve module-local packages, so the
// locklabel tests type-check this fake under the real import path and feed
// it to the checker of the code under test.
const fakeTelemetrySrc = `package telemetry
type Counter struct{}
func (c *Counter) Inc() {}
type CounterVec struct{}
func (v *CounterVec) With(values ...string) *Counter { return new(Counter) }
type GaugeVec struct{}
func (v *GaugeVec) With(values ...string) *Counter { return new(Counter) }
type HistogramVec struct{}
func (v *HistogramVec) With(values ...string) *Counter { return new(Counter) }
type Sink interface {
	Count(metric, label string)
	Observe(metric, label string, v float64)
}
const MetricActivityFirings = "activity_firings"
`

// checkLockLabel type-checks src (which may import ahs/internal/telemetry,
// resolved to the fake above) and runs the locklabel analyzer over it.
func checkLockLabel(t *testing.T, pkgPath, fname, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	telFile, err := parser.ParseFile(fset, "telemetry.go", fakeTelemetrySrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	telConf := types.Config{}
	telPkg, err := telConf.Check("ahs/internal/telemetry", fset, []*ast.File{telFile}, nil)
	if err != nil {
		t.Fatalf("typecheck fake telemetry: %v", err)
	}

	file, err := parser.ParseFile(fset, fname, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if path == "ahs/internal/telemetry" {
			return telPkg, nil
		}
		return nil, fmt.Errorf("unexpected import %q", path)
	})}
	if _, err := conf.Check(pkgPath, fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got []string
	pass := &Pass{
		Fset:      fset,
		Files:     []*ast.File{file},
		PkgPath:   pkgPath,
		TypesInfo: info,
		Report: func(d Diagnostic) {
			got = append(got, fmt.Sprintf("%d: %s", fset.Position(d.Pos).Line, d.Message))
		},
	}
	if err := LockLabelAnalyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestLockLabel(t *testing.T) {
	bad := `package p
import "ahs/internal/telemetry"
func f(v *telemetry.CounterVec, s telemetry.Sink, label string) {
	v.With(label).Inc()
	s.Count("metric", label)
	s.Observe(telemetry.MetricActivityFirings, label, 1)
}
`
	wantN(t, runSrc2(t, bad), 3, "non-constant telemetry label")

	// The second With value is the computed one; only it is flagged.
	mixed := `package p
import "ahs/internal/telemetry"
func f(v *telemetry.GaugeVec, site string) {
	v.With("fixed", site).Inc()
}
`
	got := runSrc2(t, mixed)
	wantN(t, got, 1, "non-constant telemetry label")

	for name, src := range map[string]string{
		"literal labels": `package p
import "ahs/internal/telemetry"
func f(v *telemetry.CounterVec, s telemetry.Sink) {
	v.With("route", "GET").Inc()
	s.Count("metric", "label")
}
`,
		"named constants": `package p
import "ahs/internal/telemetry"
const site = "coordinator"
func f(v *telemetry.HistogramVec, s telemetry.Sink) {
	v.With(site).Inc()
	s.Observe(telemetry.MetricActivityFirings, site, 0.5)
}
`,
		"constant concatenation": `package p
import "ahs/internal/telemetry"
const prefix = "phase_"
func f(v *telemetry.CounterVec) {
	v.With(prefix + "join").Inc()
}
`,
		"unrelated With method": `package p
type other struct{}
func (o *other) With(values ...string) *other { return o }
func f(o *other, label string) {
	o.With(label)
}
`,
	} {
		if got := runSrc2(t, src); len(got) != 0 {
			t.Errorf("%s: want clean, got %v", name, got)
		}
	}

	// The instrumentation package itself and test files are exempt.
	if got := checkLockLabel(t, "ahs/internal/telemetry", "p.go", bad); len(got) != 0 {
		t.Errorf("internal/telemetry should be exempt, got %v", got)
	}
	if got := checkLockLabel(t, "ahs/internal/mc", "p_test.go", bad); len(got) != 0 {
		t.Errorf("test files should be exempt, got %v", got)
	}
}

// runSrc2 runs locklabel over src in a normal (non-exempt) package.
func runSrc2(t *testing.T, src string) []string {
	t.Helper()
	return checkLockLabel(t, "ahs/internal/mc", "p.go", src)
}
