package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLoopAnalyzer flags for-loops that ignore an in-scope context.Context.
//
// The estimators run batches of tens of thousands of trajectories; the
// evaluation service relies on ctx cancellation to abort superseded runs
// promptly. A loop inside a context-bearing function that never consults the
// context — neither checking ctx.Err()/ctx.Done() nor passing ctx onward —
// keeps burning its whole budget after the caller has given up.
//
// A loop is exempt when it references any context-typed variable of the
// enclosing function (including forwarding it to a callee), contains a select
// statement (channel-driven loops are cancellable through their channels),
// spawns goroutines (the loop itself finishes immediately; cancellation is
// the goroutines' concern), or is a range loop (bounded by its operand).
// Test files are skipped: deadline-bounded polling loops are fine there.
var CtxLoopAnalyzer = &Analyzer{
	Name: "ctxloop",
	Doc:  "flag for-loops in context-bearing functions that never consult the context (cancellation would stall)",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ctxPkgName := importName(file, "context")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkCtxLoops(pass, fn, ctxPkgName)
			}
		}
	}
	return nil
}

func checkCtxLoops(pass *Pass, fn *ast.FuncDecl, ctxPkgName string) {
	ctxNames := contextVarNames(pass, fn, ctxPkgName)
	if len(ctxNames) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if !loopDoesWork(loop) || subtreeMentions(loop, ctxNames) || containsSelect(loop) || containsGoStmt(loop) {
			return true
		}
		pass.Reportf(loop.For, "loop never consults the context (%s in scope): check ctx.Err()/ctx.Done() or pass the context on, or cancellation stalls", anyKey(ctxNames))
		return true
	})
}

// contextVarNames collects the names of identifiers within fn whose type is
// context.Context: parameters, locals, and captured variables alike. With
// sparse type information it falls back to scanning the parameter list for
// types spelled context.Context.
func contextVarNames(pass *Pass, fn *ast.FuncDecl, ctxPkgName string) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); isVar && isContextType(obj.Type()) {
			names[id.Name] = true
		}
		return true
	})
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			sel, ok := field.Type.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Context" {
				continue
			}
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == ctxPkgName && ctxPkgName != "" {
				for _, name := range field.Names {
					names[name.Name] = true
				}
			}
		}
	}
	return names
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// loopDoesWork reports whether the loop plausibly runs long enough for
// cancellation to matter: it is unbounded, or its body makes function calls.
// Pure index arithmetic over in-memory data is left alone.
func loopDoesWork(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

func subtreeMentions(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

func containsSelect(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.SelectStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func containsGoStmt(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func anyKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
