package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// AHSRandAnalyzer flags use of math/rand (v1 or v2) outside internal/rng.
//
// Every estimate in this repository must be reproducible from a seed, and the
// Monte Carlo engine hands each trajectory its own partitioned stream. The
// math/rand package-level functions draw from a mutex-guarded global source,
// which silently couples concurrent trajectories and breaks replayability;
// even locally constructed rand.Rand values bypass the stream partitioning.
// Only internal/rng, which wraps the generator behind per-trajectory streams,
// may import it.
var AHSRandAnalyzer = &Analyzer{
	Name: "ahsrand",
	Doc:  "flag math/rand use outside internal/rng (randomness must flow through seeded per-trajectory streams)",
	Run:  runAHSRand,
}

func runAHSRand(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, "internal/rng") {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside internal/rng: use internal/rng streams so results stay reproducible", path)
			}
		}
	}
	return nil
}

// importName returns the local name a file binds to the given import path, or
// "" if the file does not import it. Shared by analyzers that need to resolve
// qualified identifiers without type information.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
