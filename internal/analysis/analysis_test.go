package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runSrc type-checks one source file (named fname so test-file exemptions
// can be exercised) and runs a single analyzer over it, returning the
// diagnostics as "line: message" strings.
func runSrc(t *testing.T, a *Analyzer, pkgPath, fname, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, fname, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check(pkgPath, fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got []string
	pass := &Pass{
		Fset:      fset,
		Files:     []*ast.File{file},
		PkgPath:   pkgPath,
		TypesInfo: info,
		Report: func(d Diagnostic) {
			got = append(got, fmt.Sprintf("%d: %s", fset.Position(d.Pos).Line, d.Message))
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	return got
}

func wantN(t *testing.T, diags []string, n int, substr string) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("want %d diagnostics, got %d: %v", n, len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d, substr) {
			t.Errorf("diagnostic %q missing %q", d, substr)
		}
	}
}

func TestAHSRand(t *testing.T) {
	src := `package p
import "math/rand"
func f() int { return rand.Intn(6) }
`
	wantN(t, runSrc(t, AHSRandAnalyzer, "ahs/internal/mc", "p.go", src), 1, "math/rand")

	// The one package allowed to wrap it.
	if got := runSrc(t, AHSRandAnalyzer, "ahs/internal/rng", "p.go", src); len(got) != 0 {
		t.Errorf("internal/rng should be exempt, got %v", got)
	}

	v2 := `package p
import mrand "math/rand/v2"
func f() int { return mrand.IntN(6) }
`
	wantN(t, runSrc(t, AHSRandAnalyzer, "ahs/internal/sim", "p.go", v2), 1, "math/rand/v2")
}

const ctxLoopBad = `package p
import "context"
func f(ctx context.Context, work func()) {
	for i := 0; i < 1000000; i++ {
		work()
	}
}
`

func TestCtxLoop(t *testing.T) {
	wantN(t, runSrc(t, CtxLoopAnalyzer, "ahs/internal/mc", "p.go", ctxLoopBad), 1, "never consults the context")

	// Same loop in a test file: exempt.
	if got := runSrc(t, CtxLoopAnalyzer, "ahs/internal/mc", "p_test.go", ctxLoopBad); len(got) != 0 {
		t.Errorf("test files should be exempt, got %v", got)
	}

	for name, src := range map[string]string{
		"checks ctx.Err": `package p
import "context"
func f(ctx context.Context, work func()) {
	for i := 0; i < 1000000; i++ {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}
`,
		"forwards ctx": `package p
import "context"
func f(ctx context.Context, work func(context.Context)) {
	for i := 0; i < 1000000; i++ {
		work(ctx)
	}
}
`,
		"local ctx variable consulted": `package p
import "context"
func f(work func()) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}
`,
		"spawn loop": `package p
import "context"
func f(ctx context.Context, work func()) {
	for i := 0; i < 8; i++ {
		go work()
	}
	<-ctx.Done()
}
`,
		"select loop": `package p
import "context"
func f(ctx context.Context, tick chan int, work func()) {
	done := ctx.Done()
	for {
		select {
		case <-done:
			return
		case <-tick:
			work()
		}
	}
}
`,
		"no context in scope": `package p
func f(work func()) {
	for i := 0; i < 1000000; i++ {
		work()
	}
}
`,
		"pure arithmetic loop": `package p
import "context"
func f(ctx context.Context, xs []float64) float64 {
	_ = ctx
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}
`,
	} {
		if got := runSrc(t, CtxLoopAnalyzer, "ahs/internal/mc", "p.go", src); len(got) != 0 {
			t.Errorf("%s: want clean, got %v", name, got)
		}
	}

	// A local ctx that exists but is never consulted by the hot loop is
	// still a finding.
	local := `package p
import "context"
func f(work func()) {
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	_ = ctx
	for i := 0; i < 1000000; i++ {
		work()
	}
}
`
	wantN(t, runSrc(t, CtxLoopAnalyzer, "ahs/internal/mc", "p.go", local), 1, "never consults")
}

func TestFloatEq(t *testing.T) {
	bad := `package p
func f(a, b float64) bool { return a == b }
`
	wantN(t, runSrc(t, FloatEqAnalyzer, "ahs/internal/san", "p.go", bad), 1, "floating-point ==")

	for name, src := range map[string]string{
		"constant comparand": `package p
func f(p float64) bool { return p == 0 }
`,
		"named constant": `package p
const tol = 1e-9
func f(p float64) bool { return p != tol }
`,
		"NaN idiom": `package p
func f(x float64) bool { return x != x }
`,
		"integers": `package p
func f(a, b int) bool { return a == b }
`,
		"comparator tiebreak": `package p
type ev struct{ t float64; seq int }
func less(a, b ev) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}
`,
		"bits comparison": `package p
import "math"
func f(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
`,
	} {
		if got := runSrc(t, FloatEqAnalyzer, "ahs/internal/san", "p.go", src); len(got) != 0 {
			t.Errorf("%s: want clean, got %v", name, got)
		}
	}

	// Test files assert exact propagation on purpose.
	if got := runSrc(t, FloatEqAnalyzer, "ahs/internal/san", "p_test.go", bad); len(got) != 0 {
		t.Errorf("test files should be exempt, got %v", got)
	}
}

func TestSuppressions(t *testing.T) {
	src := `package p
func f(a, b float64) bool {
	return a == b //ahsvet:ignore floateq exactness is intended here
}
//ahsvet:ignore floateq,ctxloop next line carries both suppressions
var _ = 0
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := suppressions(fset, []*ast.File{file})
	for _, want := range []suppressKey{
		{"p.go", 3, "floateq"},
		{"p.go", 5, "floateq"},
		{"p.go", 6, "floateq"},
		{"p.go", 6, "ctxloop"},
	} {
		if !sup[want] {
			t.Errorf("missing suppression %+v in %v", want, sup)
		}
	}
	if sup[suppressKey{"p.go", 2, "floateq"}] {
		t.Error("suppression must not extend upward")
	}
}
