package trace

import (
	"strings"
	"testing"
)

// FuzzCollapseName checks the collapse is total, panic-free and idempotent.
func FuzzCollapseName(f *testing.F) {
	for _, seed := range []string{"one_vehicle[3].L2", "a.b.c", "", ".", "..", "x."} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		got := CollapseName(name)
		if strings.ContainsRune(got, '.') {
			t.Fatalf("CollapseName(%q) = %q still contains a dot", name, got)
		}
		if again := CollapseName(got); again != got {
			t.Fatalf("not idempotent: %q -> %q -> %q", name, got, again)
		}
	})
}
