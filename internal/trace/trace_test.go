package trace

import (
	"math"
	"strings"
	"testing"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
)

func TestCollapseName(t *testing.T) {
	cases := map[string]string{
		"one_vehicle[3].L2":       "L2",
		"dynamicity.join":         "join",
		"plain":                   "plain",
		"a.b.c":                   "c",
		"transit_exit[12].done":   "done",
		"severity.to_KO":          "to_KO",
		"one_vehicle[0].maneuver": "maneuver",
		// Replica indices on the final segment are stripped too, so
		// activities living directly in a replicated scope aggregate.
		"transit_exit[12]":  "transit_exit",
		"one_vehicle[3]":    "one_vehicle",
		"net.flow[0]":       "flow",
		"scope[2].inner[7]": "inner",
		"deep.a[1].b[2]":    "b",
		"worker[007]":       "worker",
		// Bracket suffixes that are not pure replica indices stay intact.
		"x[a]":  "x[a]",
		"x[]":   "x[]",
		"[3]":   "[3]",
		"x[1]y": "x[1]y",
		"x[-1]": "x[-1]",
	}
	for in, want := range cases {
		if got := CollapseName(in); got != want {
			t.Errorf("CollapseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarizeCountsAndRates(t *testing.T) {
	events := []sim.TraceEvent{
		{Time: 0.5, Activity: "v[0].fail"},
		{Time: 1.0, Activity: "v[1].fail"},
		{Time: 1.5, Activity: "join"},
	}
	s := Summarize(events, 2.0, true)
	if s.Events != 3 || s.Duration != 2 {
		t.Fatalf("summary header %+v", s)
	}
	if s.Counts["fail"] != 2 || s.Counts["join"] != 1 {
		t.Fatalf("counts %v", s.Counts)
	}
	if math.Abs(s.Rate("fail")-1.0) > 1e-12 {
		t.Fatalf("rate %v, want 1", s.Rate("fail"))
	}
	if s.Rate("missing") != 0 {
		t.Fatal("missing label must have rate 0")
	}
	// Without collapsing the scoped names stay distinct.
	s2 := Summarize(events, 2.0, false)
	if s2.Counts["v[0].fail"] != 1 || s2.Counts["v[1].fail"] != 1 {
		t.Fatalf("uncollapsed counts %v", s2.Counts)
	}
}

func TestMergeAccumulates(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Time: 1, Activity: "a"}}, 1, false)
	s.Merge([]sim.TraceEvent{{Time: 0.5, Activity: "a"}, {Time: 0.7, Activity: "b"}}, 3, false)
	if s.Events != 3 || s.Duration != 4 || s.Counts["a"] != 2 || s.Counts["b"] != 1 {
		t.Fatalf("merged summary %+v", s)
	}
}

func TestRowsSortedDeterministically(t *testing.T) {
	s := Summarize([]sim.TraceEvent{
		{Activity: "b"}, {Activity: "a"}, {Activity: "c"}, {Activity: "c"},
	}, 1, false)
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows %v", rows)
	}
	if rows[0].Label != "c" || rows[1].Label != "a" || rows[2].Label != "b" {
		t.Fatalf("row order %v", rows)
	}
}

func TestZeroDurationRate(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Activity: "a"}}, 0, false)
	if s.Rate("a") != 0 {
		t.Fatal("zero-duration rate must be 0")
	}
}

func TestInterEventTimes(t *testing.T) {
	events := []sim.TraceEvent{{Time: 1}, {Time: 1.5}, {Time: 3}}
	gaps := InterEventTimes(events)
	if len(gaps) != 2 || gaps[0] != 0.5 || gaps[1] != 1.5 {
		t.Fatalf("gaps %v", gaps)
	}
	if InterEventTimes(events[:1]) != nil {
		t.Fatal("single event must yield no gaps")
	}
}

func TestSummaryStringRendering(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Time: 1, Activity: "x"}}, 2, false)
	out := s.String()
	if !strings.Contains(out, "1 events") || !strings.Contains(out, "x") {
		t.Fatalf("rendered summary %q", out)
	}
}

func TestRateIntervalSingleTrajectoryPoisson(t *testing.T) {
	// 16 events over 4 time units: rate 4, Poisson half-width z·√16/4 = z.
	events := make([]sim.TraceEvent, 16)
	for i := range events {
		events[i] = sim.TraceEvent{Time: float64(i) * 0.25, Activity: "a"}
	}
	s := Summarize(events, 4, false)
	iv := s.RateInterval("a", 0.95)
	if iv.N != 1 {
		t.Fatalf("interval over %d trajectories, want 1", iv.N)
	}
	if math.Abs(iv.Point-4) > 1e-12 {
		t.Fatalf("point %v, want 4", iv.Point)
	}
	z := 1.959963984540054 // Φ⁻¹(0.975)
	if math.Abs(iv.Lo-(4-z)) > 1e-6 || math.Abs(iv.Hi-(4+z)) > 1e-6 {
		t.Fatalf("interval [%v, %v], want [4∓%v]", iv.Lo, iv.Hi, z)
	}
	// Unknown labels degenerate to a zero-width interval at 0.
	if iv := s.RateInterval("missing", 0.95); iv.Point != 0 || iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("missing-label interval %+v", iv)
	}
}

func TestRateIntervalZeroDuration(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Activity: "a"}}, 0, false)
	if iv := s.RateInterval("a", 0.95); iv.Point != 0 || iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("zero-duration interval %+v", iv)
	}
}

func TestRateIntervalAcrossTrajectories(t *testing.T) {
	// Three unit-length trajectories with per-trajectory rates 2, 4, 6 for
	// "a": mean 4, sample standard deviation 2.
	s := &Summary{Counts: make(map[string]uint64)}
	s.Merge([]sim.TraceEvent{{Activity: "a"}, {Activity: "a"}}, 1, false)
	s.Merge([]sim.TraceEvent{
		{Activity: "a"}, {Activity: "a"}, {Activity: "a"}, {Activity: "a"},
	}, 1, false)
	s.Merge([]sim.TraceEvent{
		{Activity: "a"}, {Activity: "a"}, {Activity: "a"},
		{Activity: "a"}, {Activity: "a"}, {Activity: "a"},
		{Activity: "b"},
	}, 1, false)
	iv := s.RateInterval("a", 0.95)
	if iv.N != 3 {
		t.Fatalf("interval over %d trajectories, want 3", iv.N)
	}
	if math.Abs(iv.Point-4) > 1e-12 {
		t.Fatalf("point %v, want mean rate 4", iv.Point)
	}
	if !(iv.Lo < 4 && 4 < iv.Hi) || iv.Lo == iv.Hi {
		t.Fatalf("degenerate interval [%v, %v]", iv.Lo, iv.Hi)
	}

	// "b" fired only in the last trajectory; the first two must count as
	// zero-rate observations (backfilled), giving mean 1/3 — not 1.
	ivB := s.RateInterval("b", 0.95)
	if ivB.N != 3 {
		t.Fatalf("label seen late: interval over %d trajectories, want 3", ivB.N)
	}
	if math.Abs(ivB.Point-1.0/3) > 1e-12 {
		t.Fatalf("backfilled point %v, want 1/3", ivB.Point)
	}
}

func TestRowsCarryConfidenceIntervals(t *testing.T) {
	s := &Summary{Counts: make(map[string]uint64)}
	s.Merge([]sim.TraceEvent{{Activity: "a"}}, 1, false)
	s.Merge([]sim.TraceEvent{{Activity: "a"}, {Activity: "a"}, {Activity: "a"}}, 1, false)
	rows := s.Rows()
	if len(rows) != 1 || rows[0].CI.N != 2 || rows[0].CI.Confidence != 0.95 {
		t.Fatalf("rows %+v", rows)
	}
	if !strings.Contains(s.String(), "95% CI [") || !strings.Contains(s.String(), "(2 trajectories)") {
		t.Fatalf("rendered summary %q", s.String())
	}
}

// TestEmpiricalRateMatchesModelRate is the end-to-end check: summarising a
// Poisson process trace recovers its rate.
func TestEmpiricalRateMatchesModelRate(t *testing.T) {
	b := san.NewBuilder("poisson")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:  "arrive",
		Rate:  san.ConstRate(3),
		Input: san.Produce(c, 1),
	})
	m := b.MustBuild()
	tr := &sim.Trace{}
	r, err := sim.NewRunner(m, sim.Options{MaxTime: 200, Observer: tr})
	if err != nil {
		t.Fatal(err)
	}
	s := &Summary{Counts: make(map[string]uint64)}
	src := rng.NewSource(4)
	for i := 0; i < 20; i++ {
		tr.Reset()
		res, err := r.Run(src.Stream(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		s.Merge(tr.Events, res.End, true)
	}
	if math.Abs(s.Rate("arrive")-3) > 0.1 {
		t.Fatalf("empirical rate %v, want ~3", s.Rate("arrive"))
	}
	// The CI must bracket the empirical rate tightly (all trajectories run
	// for the same duration, so the Welford mean equals the aggregate rate);
	// asserting it covers the model rate would fail 5% of seeds by design.
	iv := s.RateInterval("arrive", 0.95)
	if !(iv.Lo < s.Rate("arrive") && s.Rate("arrive") < iv.Hi) {
		t.Fatalf("95%% CI [%v, %v] excludes the empirical rate %v", iv.Lo, iv.Hi, s.Rate("arrive"))
	}
	if iv.Hi-iv.Lo > 0.3 {
		t.Fatalf("CI [%v, %v] implausibly wide for 20×200h of data", iv.Lo, iv.Hi)
	}
}
