package trace

import (
	"math"
	"strings"
	"testing"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
)

func TestCollapseName(t *testing.T) {
	cases := map[string]string{
		"one_vehicle[3].L2":       "L2",
		"dynamicity.join":         "join",
		"plain":                   "plain",
		"a.b.c":                   "c",
		"transit_exit[12].done":   "done",
		"severity.to_KO":          "to_KO",
		"one_vehicle[0].maneuver": "maneuver",
	}
	for in, want := range cases {
		if got := CollapseName(in); got != want {
			t.Errorf("CollapseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarizeCountsAndRates(t *testing.T) {
	events := []sim.TraceEvent{
		{Time: 0.5, Activity: "v[0].fail"},
		{Time: 1.0, Activity: "v[1].fail"},
		{Time: 1.5, Activity: "join"},
	}
	s := Summarize(events, 2.0, true)
	if s.Events != 3 || s.Duration != 2 {
		t.Fatalf("summary header %+v", s)
	}
	if s.Counts["fail"] != 2 || s.Counts["join"] != 1 {
		t.Fatalf("counts %v", s.Counts)
	}
	if math.Abs(s.Rate("fail")-1.0) > 1e-12 {
		t.Fatalf("rate %v, want 1", s.Rate("fail"))
	}
	if s.Rate("missing") != 0 {
		t.Fatal("missing label must have rate 0")
	}
	// Without collapsing the scoped names stay distinct.
	s2 := Summarize(events, 2.0, false)
	if s2.Counts["v[0].fail"] != 1 || s2.Counts["v[1].fail"] != 1 {
		t.Fatalf("uncollapsed counts %v", s2.Counts)
	}
}

func TestMergeAccumulates(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Time: 1, Activity: "a"}}, 1, false)
	s.Merge([]sim.TraceEvent{{Time: 0.5, Activity: "a"}, {Time: 0.7, Activity: "b"}}, 3, false)
	if s.Events != 3 || s.Duration != 4 || s.Counts["a"] != 2 || s.Counts["b"] != 1 {
		t.Fatalf("merged summary %+v", s)
	}
}

func TestRowsSortedDeterministically(t *testing.T) {
	s := Summarize([]sim.TraceEvent{
		{Activity: "b"}, {Activity: "a"}, {Activity: "c"}, {Activity: "c"},
	}, 1, false)
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows %v", rows)
	}
	if rows[0].Label != "c" || rows[1].Label != "a" || rows[2].Label != "b" {
		t.Fatalf("row order %v", rows)
	}
}

func TestZeroDurationRate(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Activity: "a"}}, 0, false)
	if s.Rate("a") != 0 {
		t.Fatal("zero-duration rate must be 0")
	}
}

func TestInterEventTimes(t *testing.T) {
	events := []sim.TraceEvent{{Time: 1}, {Time: 1.5}, {Time: 3}}
	gaps := InterEventTimes(events)
	if len(gaps) != 2 || gaps[0] != 0.5 || gaps[1] != 1.5 {
		t.Fatalf("gaps %v", gaps)
	}
	if InterEventTimes(events[:1]) != nil {
		t.Fatal("single event must yield no gaps")
	}
}

func TestSummaryStringRendering(t *testing.T) {
	s := Summarize([]sim.TraceEvent{{Time: 1, Activity: "x"}}, 2, false)
	out := s.String()
	if !strings.Contains(out, "1 events") || !strings.Contains(out, "x") {
		t.Fatalf("rendered summary %q", out)
	}
}

// TestEmpiricalRateMatchesModelRate is the end-to-end check: summarising a
// Poisson process trace recovers its rate.
func TestEmpiricalRateMatchesModelRate(t *testing.T) {
	b := san.NewBuilder("poisson")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:  "arrive",
		Rate:  san.ConstRate(3),
		Input: san.Produce(c, 1),
	})
	m := b.MustBuild()
	tr := &sim.Trace{}
	r, err := sim.NewRunner(m, sim.Options{MaxTime: 200, Observer: tr})
	if err != nil {
		t.Fatal(err)
	}
	s := &Summary{Counts: make(map[string]uint64)}
	src := rng.NewSource(4)
	for i := 0; i < 20; i++ {
		tr.Reset()
		res, err := r.Run(src.Stream(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		s.Merge(tr.Events, res.End, true)
	}
	if math.Abs(s.Rate("arrive")-3) > 0.1 {
		t.Fatalf("empirical rate %v, want ~3", s.Rate("arrive"))
	}
}
