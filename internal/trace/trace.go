// Package trace analyses recorded simulation trajectories: activity
// frequencies, empirical firing rates, and collapsing of replica-scoped
// activity names ("one_vehicle[3].L2" → "L2") so that per-vehicle activity
// replicas aggregate naturally.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ahs/internal/sim"
	"ahs/internal/stats"
)

// CollapseName strips scope prefixes (everything up to the last '.') and
// replica indices from an activity name, so replicated activities aggregate
// under one label: "one_vehicle[3].L2" → "L2", "dynamicity.join" → "join".
// A trailing replica index on the remaining segment is removed too —
// "transit_exit[12]" → "transit_exit" — so replicas whose activity sits
// directly in the replicated scope (no inner name) still aggregate.
func CollapseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	if j := strings.IndexByte(name, '['); j > 0 && strings.HasSuffix(name, "]") {
		if idx := name[j+1 : len(name)-1]; isAllDigits(idx) {
			name = name[:j]
		}
	}
	return name
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Summary aggregates one or more trajectories.
type Summary struct {
	// Events is the total number of recorded completions.
	Events uint64
	// Duration is the total observed simulation time.
	Duration float64
	// Trajectories counts the merged trajectories.
	Trajectories uint64
	// Counts maps (possibly collapsed) activity labels to completions.
	Counts map[string]uint64

	// rateAccs holds per-label Welford accumulators over per-trajectory
	// empirical rates, the basis of RateInterval's confidence intervals.
	// Labels absent from a trajectory contribute a zero rate; the zeros
	// are backfilled lazily (see acc) so Merge stays O(events).
	rateAccs map[string]*stats.Welford
}

// Summarize aggregates the events of one trajectory observed for the given
// duration. With collapse, replica-scoped names are merged.
func Summarize(events []sim.TraceEvent, duration float64, collapse bool) *Summary {
	s := &Summary{Counts: make(map[string]uint64)}
	s.Merge(events, duration, collapse)
	return s
}

// Merge folds another trajectory into the summary.
func (s *Summary) Merge(events []sim.TraceEvent, duration float64, collapse bool) {
	s.Trajectories++
	s.Events += uint64(len(events))
	s.Duration += duration
	local := make(map[string]uint64, len(s.Counts))
	for _, ev := range events {
		name := ev.Activity
		if collapse {
			name = CollapseName(name)
		}
		s.Counts[name]++
		local[name]++
	}
	for label, n := range local {
		rate := 0.0
		if duration > 0 {
			rate = float64(n) / duration
		}
		s.acc(label, s.Trajectories-1).Add(rate)
	}
}

// acc returns the label's rate accumulator, backfilled with zero-rate
// observations up to upTo trajectories (for trajectories merged before the
// label first appeared, or while it was absent).
func (s *Summary) acc(label string, upTo uint64) *stats.Welford {
	if s.rateAccs == nil {
		s.rateAccs = make(map[string]*stats.Welford)
	}
	w := s.rateAccs[label]
	if w == nil {
		w = &stats.Welford{}
		s.rateAccs[label] = w
	}
	if n := w.N(); n < upTo {
		w.AddN(0, upTo-n)
	}
	return w
}

// Rate returns the aggregate empirical firing rate (total completions per
// total observed time) of a label, 0 when no time was observed.
func (s *Summary) Rate(label string) float64 {
	if s.Duration == 0 {
		return 0
	}
	return float64(s.Counts[label]) / s.Duration
}

// RateInterval returns the label's empirical firing rate with a two-sided
// confidence interval. With at least two merged trajectories the interval
// is the Student-t CI over the per-trajectory rates (zero for trajectories
// where the label never fired), which captures the true cross-trajectory
// variability. With a single trajectory it falls back to the Poisson normal
// approximation k/T ± z·√k/T. Unknown labels yield a zero-point interval.
func (s *Summary) RateInterval(label string, confidence float64) stats.Interval {
	if s.Trajectories >= 2 {
		return s.acc(label, s.Trajectories).CI(confidence)
	}
	iv := stats.Interval{Confidence: confidence, N: s.Trajectories}
	if s.Duration == 0 {
		return iv
	}
	k := float64(s.Counts[label])
	iv.Point = k / s.Duration
	z := stats.NormalQuantile(0.5 + confidence/2)
	h := z * math.Sqrt(k) / s.Duration
	iv.Lo, iv.Hi = iv.Point-h, iv.Point+h
	return iv
}

// Row is one line of a rendered summary.
type Row struct {
	Label string
	Count uint64
	Rate  float64
	// CI bounds the empirical rate (95%); see RateInterval.
	CI stats.Interval
}

// Rows returns the activity rows sorted by descending count (ties broken
// alphabetically, so output is deterministic).
func (s *Summary) Rows() []Row {
	rows := make([]Row, 0, len(s.Counts))
	for label, count := range s.Counts {
		rows = append(rows, Row{
			Label: label,
			Count: count,
			Rate:  s.Rate(label),
			CI:    s.RateInterval(label, 0.95),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// String renders the summary as a compact table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events over %.4g time units (%d trajectories)\n",
		s.Events, s.Duration, s.Trajectories)
	for _, row := range s.Rows() {
		fmt.Fprintf(&b, "  %-24s %8d  (%.4g /unit, 95%% CI [%.4g, %.4g])\n",
			row.Label, row.Count, row.Rate, row.CI.Lo, row.CI.Hi)
	}
	return b.String()
}

// InterEventTimes returns the gaps between consecutive events of one
// trajectory (empty for fewer than two events).
func InterEventTimes(events []sim.TraceEvent) []float64 {
	if len(events) < 2 {
		return nil
	}
	out := make([]float64, 0, len(events)-1)
	for i := 1; i < len(events); i++ {
		out = append(out, events[i].Time-events[i-1].Time)
	}
	return out
}
