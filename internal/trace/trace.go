// Package trace analyses recorded simulation trajectories: activity
// frequencies, empirical firing rates, and collapsing of replica-scoped
// activity names ("one_vehicle[3].L2" → "L2") so that per-vehicle activity
// replicas aggregate naturally.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ahs/internal/sim"
)

// CollapseName strips scope prefixes (everything up to the last '.') and
// replica indices from an activity name, so replicated activities aggregate
// under one label: "one_vehicle[3].L2" → "L2", "dynamicity.join" → "join".
func CollapseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// Summary aggregates one or more trajectories.
type Summary struct {
	// Events is the total number of recorded completions.
	Events uint64
	// Duration is the total observed simulation time.
	Duration float64
	// Counts maps (possibly collapsed) activity labels to completions.
	Counts map[string]uint64
}

// Summarize aggregates the events of one trajectory observed for the given
// duration. With collapse, replica-scoped names are merged.
func Summarize(events []sim.TraceEvent, duration float64, collapse bool) *Summary {
	s := &Summary{Counts: make(map[string]uint64)}
	s.Merge(events, duration, collapse)
	return s
}

// Merge folds another trajectory into the summary.
func (s *Summary) Merge(events []sim.TraceEvent, duration float64, collapse bool) {
	s.Events += uint64(len(events))
	s.Duration += duration
	for _, ev := range events {
		name := ev.Activity
		if collapse {
			name = CollapseName(name)
		}
		s.Counts[name]++
	}
}

// Rate returns the empirical firing rate (completions per unit time) of a
// label, 0 when no time was observed.
func (s *Summary) Rate(label string) float64 {
	if s.Duration == 0 {
		return 0
	}
	return float64(s.Counts[label]) / s.Duration
}

// Row is one line of a rendered summary.
type Row struct {
	Label string
	Count uint64
	Rate  float64
}

// Rows returns the activity rows sorted by descending count (ties broken
// alphabetically, so output is deterministic).
func (s *Summary) Rows() []Row {
	rows := make([]Row, 0, len(s.Counts))
	for label, count := range s.Counts {
		rows = append(rows, Row{Label: label, Count: count, Rate: s.Rate(label)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// String renders the summary as a compact table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events over %.4g time units\n", s.Events, s.Duration)
	for _, row := range s.Rows() {
		fmt.Fprintf(&b, "  %-24s %8d  (%.4g /unit)\n", row.Label, row.Count, row.Rate)
	}
	return b.String()
}

// InterEventTimes returns the gaps between consecutive events of one
// trajectory (empty for fewer than two events).
func InterEventTimes(events []sim.TraceEvent) []float64 {
	if len(events) < 2 {
		return nil
	}
	out := make([]float64, 0, len(events)-1)
	for i := 1; i < len(events); i++ {
		out = append(out, events[i].Time-events[i-1].Time)
	}
	return out
}
