package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"ahs/internal/sim"
)

func sampleTrajectory() []sim.TraceEvent {
	return []sim.TraceEvent{
		{Time: 0.25, Activity: "one_vehicle[0].L3"},
		{Time: 0.50, Activity: "one_vehicle[0].maneuver"},
		{Time: 0.75, Activity: "dynamicity.join"},
		{Time: 1.25, Activity: "one_vehicle[1].L3"},
		{Time: 2.00, Activity: "severity.to_KO"},
	}
}

// TestChromeTraceRoundTrip is the ISSUE's schema round-trip: export a
// trajectory, re-parse it strictly, and check the structural invariants.
func TestChromeTraceRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, sampleTrajectory(), ChromeTraceOptions{Collapse: true}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, b.String())
	}

	var tr chromeTrace
	if err := json.Unmarshal([]byte(b.String()), &tr); err != nil {
		t.Fatal(err)
	}
	// 1 process_name + 4 collapsed tracks (L3, join, maneuver, to_KO) +
	// 5 instants.
	instants, threads := 0, map[string]int{}
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case phaseInstant:
			instants++
		case phaseMetadata:
			if ev.Name == "thread_name" {
				threads[ev.Args["name"].(string)] = ev.Tid
			}
		}
	}
	if instants != 5 {
		t.Fatalf("instant events %d, want 5", instants)
	}
	for _, want := range []string{"L3", "join", "maneuver", "to_KO"} {
		if _, ok := threads[want]; !ok {
			t.Errorf("missing track %q (have %v)", want, threads)
		}
	}
	if len(threads) != 4 {
		t.Fatalf("tracks %v, want 4 collapsed tracks", threads)
	}
	// Both L3 replicas must land on the same (collapsed) track, at
	// microsecond timestamps 1h = 1e6 µs.
	var l3Ts []float64
	for _, ev := range tr.TraceEvents {
		if ev.Phase == phaseInstant && ev.Name == "L3" {
			l3Ts = append(l3Ts, ev.Ts)
			if ev.Tid != threads["L3"] {
				t.Errorf("L3 instant on tid %d, want %d", ev.Tid, threads["L3"])
			}
		}
	}
	if len(l3Ts) != 2 || l3Ts[0] != 0.25e6 || l3Ts[1] != 1.25e6 {
		t.Fatalf("L3 timestamps %v, want [250000 1250000]", l3Ts)
	}
}

func TestChromeTraceUncollapsedKeepsReplicaTracks(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, sampleTrajectory(), ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if !strings.Contains(b.String(), `"one_vehicle[0].L3"`) || !strings.Contains(b.String(), `"one_vehicle[1].L3"`) {
		t.Fatalf("replica tracks merged without Collapse:\n%s", b.String())
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":                "not json",
		"empty events":            `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"unknown phase":           `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"complete no dur":         `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"x"}},{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"negative dur":            `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"x"}},{"name":"x","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"complete undeclared tid": `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":2,"pid":1,"tid":7}],"displayTimeUnit":"ms"}`,
		"undeclared tid":          `{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":1,"tid":9,"s":"t"}],"displayTimeUnit":"ms"}`,
		"missing scope":           `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"x"}},{"name":"x","ph":"i","ts":1,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"time goes back":          `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"x"}},{"name":"x","ph":"i","ts":5,"pid":1,"tid":1,"s":"t"},{"name":"x","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"}],"displayTimeUnit":"ms"}`,
		"unknown field":           `{"traceEvents":[],"displayTimeUnit":"ms","bogus":1}`,
		"negative ts":             `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"x"}},{"name":"x","ph":"i","ts":-1,"pid":1,"tid":1,"s":"t"}],"displayTimeUnit":"ms"}`,
		"anonymous event":         `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"x"}},{"name":"","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"}],"displayTimeUnit":"ms"}`,
	}
	for name, in := range cases {
		if err := ValidateChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
}

func TestWriteChromeSpansRoundTrip(t *testing.T) {
	spans := []ChromeSpan{
		{Name: "merge", Track: "merge", Start: 900, End: 950, Args: map[string]any{"chunk": "2"}},
		{Name: "evaluate", Track: "evaluate", Start: 0, End: 1000},
		{Name: "lease", Track: "lease", Start: 100, End: 400},
		{Name: "lease", Track: "lease", Start: 200, End: 300},
	}
	var sb strings.Builder
	if err := WriteChromeSpans(&sb, "test trace", spans); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("span export does not validate: %v\n%s", err, sb.String())
	}

	var tr chromeTrace
	if err := json.Unmarshal([]byte(sb.String()), &tr); err != nil {
		t.Fatal(err)
	}
	// 1 process_name + 3 thread_name + 4 spans.
	if len(tr.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(tr.TraceEvents))
	}
	// Deterministic tids: tracks sorted by name (evaluate=1, lease=2, merge=3).
	tids := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			tids[ev.Args["name"].(string)] = ev.Tid
		}
	}
	want := map[string]int{"evaluate": 1, "lease": 2, "merge": 3}
	for name, tid := range want {
		if tids[name] != tid {
			t.Fatalf("track tids = %v, want %v", tids, want)
		}
	}
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			t.Fatalf("span event %q lacks dur", ev.Name)
		}
	}
}

func TestWriteChromeSpansRejectsNegativeDuration(t *testing.T) {
	var sb strings.Builder
	err := WriteChromeSpans(&sb, "", []ChromeSpan{{Name: "bad", Track: "bad", Start: 10, End: 5}})
	if err == nil {
		t.Fatal("negative-duration span accepted")
	}
}
