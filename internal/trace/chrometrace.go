package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ahs/internal/sim"
)

// Chrome trace-event phases used by the exporter (the format's "ph" field).
const (
	phaseInstant  = "i"
	phaseMetadata = "M"
	phaseComplete = "X"
)

// chromeEvent is one entry of the Chrome trace-event JSON object format,
// viewable in Perfetto (ui.perfetto.dev) and chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTraceOptions configures WriteChromeTrace.
type ChromeTraceOptions struct {
	// ProcessName labels the process track (default "ahs trajectory").
	ProcessName string
	// Collapse groups events into one track per collapsed activity name
	// (CollapseName); false keeps one track per full replica-scoped name.
	Collapse bool
}

// WriteChromeTrace exports one recorded trajectory in the Chrome
// trace-event JSON object format. Every activity completion becomes a
// thread-scoped instant event on the track of its (optionally collapsed)
// activity name, so Perfetto renders one timeline row per activity type.
//
// Simulation time is in hours while the format's ts field is in
// microseconds; one simulated hour is exported as one second (1e6 µs), so
// the viewer's seconds read as hours. The exact simulation time is kept in
// args.hours.
func WriteChromeTrace(w io.Writer, events []sim.TraceEvent, opts ChromeTraceOptions) error {
	if opts.ProcessName == "" {
		opts.ProcessName = "ahs trajectory"
	}
	track := func(name string) string {
		if opts.Collapse {
			return CollapseName(name)
		}
		return name
	}

	// Deterministic thread ids: sorted track names, tid 1..n.
	names := make(map[string]bool, 16)
	for _, ev := range events {
		names[track(ev.Activity)] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	tids := make(map[string]int, len(sorted))
	for i, name := range sorted {
		tids[name] = i + 1
	}

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(sorted)+1),
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name:  "process_name",
		Phase: phaseMetadata,
		Pid:   1,
		Args:  map[string]any{"name": opts.ProcessName},
	})
	for _, name := range sorted {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: phaseMetadata,
			Pid:   1,
			Tid:   tids[name],
			Args:  map[string]any{"name": name},
		})
	}
	const microsPerHour = 1e6
	for _, ev := range events {
		label := track(ev.Activity)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  label,
			Phase: phaseInstant,
			Ts:    ev.Time * microsPerHour,
			Pid:   1,
			Tid:   tids[label],
			Scope: "t",
			Args:  map[string]any{"hours": ev.Time, "activity": ev.Activity},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ChromeSpan is one duration slice of a distributed-trace export: a named
// interval on a track, rendered by Perfetto as a bar from Start to End
// (microseconds). internal/obs converts recorded spans into these.
type ChromeSpan struct {
	// Name labels the bar; Track picks the timeline row (one row per
	// distinct track name).
	Name  string
	Track string
	// Start and End are microseconds on the trace's own clock; End must
	// not precede Start.
	Start, End float64
	// Args carries span attributes into the Perfetto detail pane.
	Args map[string]any
}

// WriteChromeSpans exports duration spans in the Chrome trace-event JSON
// object format as complete ("X") events, one Perfetto row per track, with
// deterministic thread IDs (tracks sorted by name). The output validates
// under ValidateChromeTrace. processName labels the process track
// (default "ahs trace").
func WriteChromeSpans(w io.Writer, processName string, spans []ChromeSpan) error {
	if processName == "" {
		processName = "ahs trace"
	}
	names := make(map[string]bool, 16)
	for _, sp := range spans {
		names[sp.Track] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	tids := make(map[string]int, len(sorted))
	for i, name := range sorted {
		tids[name] = i + 1
	}

	// The validator requires non-decreasing timestamps per track, so order
	// events by start within each track (stable: equal starts keep input
	// order).
	ordered := append([]ChromeSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Track != ordered[j].Track {
			return tids[ordered[i].Track] < tids[ordered[j].Track]
		}
		return ordered[i].Start < ordered[j].Start
	})

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]chromeEvent, 0, len(ordered)+len(sorted)+1),
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name:  "process_name",
		Phase: phaseMetadata,
		Pid:   1,
		Args:  map[string]any{"name": processName},
	})
	for _, name := range sorted {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: phaseMetadata,
			Pid:   1,
			Tid:   tids[name],
			Args:  map[string]any{"name": name},
		})
	}
	for _, sp := range ordered {
		dur := sp.End - sp.Start
		if dur < 0 {
			return fmt.Errorf("trace: span %q ends %g µs before it starts", sp.Name, -dur)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  sp.Name,
			Phase: phaseComplete,
			Ts:    sp.Start,
			Dur:   &dur,
			Pid:   1,
			Tid:   tids[sp.Track],
			Args:  sp.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChromeTrace checks that the input parses as the Chrome
// trace-event JSON object format with the invariants the exporters
// guarantee: known phases only; instant events carry a scope; instant and
// complete events use a tid declared by a thread_name metadata event;
// timestamps are non-negative and non-decreasing per track; complete
// events carry a non-negative duration. The export tests round-trip
// through this validator.
func ValidateChromeTrace(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr chromeTrace
	if err := dec.Decode(&tr); err != nil {
		return fmt.Errorf("trace: not a chrome trace object: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents")
	}
	namedThreads := make(map[int]bool)
	lastTs := make(map[int]float64)
	for i, ev := range tr.TraceEvents {
		switch ev.Phase {
		case phaseMetadata:
			if ev.Name == "thread_name" {
				namedThreads[ev.Tid] = true
			}
		case phaseInstant, phaseComplete:
			if ev.Name == "" {
				return fmt.Errorf("trace: event %d has no name", i)
			}
			if ev.Phase == phaseInstant && ev.Scope == "" {
				return fmt.Errorf("trace: instant event %d (%s) has no scope", i, ev.Name)
			}
			if ev.Phase == phaseComplete && (ev.Dur == nil || *ev.Dur < 0) {
				return fmt.Errorf("trace: complete event %d (%s) needs a non-negative dur", i, ev.Name)
			}
			if !namedThreads[ev.Tid] {
				return fmt.Errorf("trace: event %d (%s) uses undeclared tid %d", i, ev.Name, ev.Tid)
			}
			if ev.Ts < 0 {
				return fmt.Errorf("trace: event %d (%s) has negative ts", i, ev.Name)
			}
			if last, ok := lastTs[ev.Tid]; ok && ev.Ts < last {
				return fmt.Errorf("trace: event %d (%s) goes back in time on tid %d", i, ev.Name, ev.Tid)
			}
			lastTs[ev.Tid] = ev.Ts
		default:
			return fmt.Errorf("trace: event %d has unsupported phase %q", i, ev.Phase)
		}
	}
	return nil
}
