package rare

import (
	"math"
	"testing"

	"ahs/internal/core"
	"ahs/internal/ctmc"
	"ahs/internal/san"
)

func buildMM1K(k int, lambda, mu float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("mm1k")
	q := b.Place("queue", 0)
	b.Timed(san.TimedActivity{
		Name:    "arrive",
		Enabled: func(m *san.Marking) bool { return m.Tokens(q) < k },
		Rate:    san.ConstRate(lambda),
		Input:   san.Produce(q, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "depart",
		Enabled: san.HasTokens(q, 1),
		Rate:    san.ConstRate(mu),
		Input:   san.Consume(q, 1),
	})
	return b.MustBuild(), q
}

func TestSplittingMatchesExactOnMM1K(t *testing.T) {
	// Buffer overflow of a stable queue: a genuinely rare event.
	const k = 9
	const lambda, mu, horizon = 1.0, 3.0, 5.0
	m, q := buildMM1K(k, lambda, mu)
	target := san.HasTokens(q, k)

	g, err := ctmc.Explore(m, ctmc.ExploreOptions{Absorb: target})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.TransientProbability(horizon, target)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 || exact > 1e-3 {
		t.Fatalf("test setup: exact %v not in the rare regime", exact)
	}

	sp := &Splitting{
		Model:        m,
		MaxTime:      horizon,
		Target:       target,
		Level:        func(mk *san.Marking) int { return mk.Tokens(q) },
		Thresholds:   []int{2, 4, 6, 8},
		Effort:       2000,
		Replications: 10,
		Seed:         1,
	}
	res, err := sp.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	iv := res.Interval
	se := iv.HalfWidth() / 1.96
	if se == 0 {
		t.Fatalf("degenerate splitting interval %v", iv)
	}
	// Allow the CI plus a small bias allowance (fixed-effort splitting is
	// consistent with O(1/effort) bias).
	if math.Abs(iv.Point-exact) > 5*se+0.05*exact {
		t.Fatalf("splitting %v vs exact %v", iv, exact)
	}
	// Relative precision must beat naive MC at the same budget by far.
	if iv.RelativeHalfWidth() > 0.5 {
		t.Fatalf("splitting interval too loose: %v", iv)
	}
}

func TestSplittingMatchesExactOnReducedAHS(t *testing.T) {
	p := core.DefaultParams()
	p.N = 1
	p.Lambda = 1e-3
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	p.TrackOutcomes = false
	a := core.MustBuild(p)

	g, err := ctmc.Explore(a.Model, ctmc.ExploreOptions{Absorb: a.Unsafe, MaxStates: 50000})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 8.0
	exact, err := g.TransientProbability(horizon, a.Unsafe)
	if err != nil {
		t.Fatal(err)
	}

	sp := &Splitting{
		Model:   a.Model,
		MaxTime: horizon,
		Target:  a.Unsafe,
		Level: func(mk *san.Marking) int {
			nA, nB, nC := a.ActiveFailures(mk)
			return nA + nB + nC
		},
		Thresholds:   []int{1},
		Effort:       3000,
		Replications: 8,
		Seed:         2,
	}
	res, err := sp.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	iv := res.Interval
	se := iv.HalfWidth() / 1.96
	if math.Abs(iv.Point-exact) > 5*se+0.1*exact {
		t.Fatalf("splitting %v vs exact %v", iv, exact)
	}
}

func TestSplittingStageDiagnostics(t *testing.T) {
	m, q := buildMM1K(6, 1, 2)
	sp := &Splitting{
		Model:        m,
		MaxTime:      3,
		Target:       san.HasTokens(q, 6),
		Level:        func(mk *san.Marking) int { return mk.Tokens(q) },
		Thresholds:   []int{2, 4},
		Effort:       500,
		Replications: 4,
		Seed:         3,
	}
	res, err := sp.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageFractions) != 4 {
		t.Fatalf("expected 4 replications of fractions, got %d", len(res.StageFractions))
	}
	for _, fr := range res.StageFractions {
		if len(fr) == 0 || len(fr) > 3 {
			t.Fatalf("unexpected stage count %d", len(fr))
		}
		for _, f := range fr {
			if f < 0 || f > 1 {
				t.Fatalf("stage fraction %v out of range", f)
			}
		}
	}
}

func TestSplittingZeroHitsGiveZeroEstimate(t *testing.T) {
	// A target that is unreachable gives exactly zero.
	m, q := buildMM1K(4, 0.001, 100 /* effectively never fills */)
	sp := &Splitting{
		Model:        m,
		MaxTime:      0.01,
		Target:       san.HasTokens(q, 4),
		Level:        func(mk *san.Marking) int { return mk.Tokens(q) },
		Thresholds:   []int{2},
		Effort:       50,
		Replications: 3,
		Seed:         4,
	}
	res, err := sp.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval.Point != 0 {
		t.Fatalf("expected zero estimate, got %v", res.Interval.Point)
	}
}

func TestSplittingValidation(t *testing.T) {
	m, q := buildMM1K(4, 1, 2)
	level := func(mk *san.Marking) int { return mk.Tokens(q) }
	target := san.HasTokens(q, 4)
	cases := map[string]*Splitting{
		"nil model":      {MaxTime: 1, Target: target, Level: level, Thresholds: []int{1}},
		"bad time":       {Model: m, Target: target, Level: level, Thresholds: []int{1}},
		"nil target":     {Model: m, MaxTime: 1, Level: level, Thresholds: []int{1}},
		"nil level":      {Model: m, MaxTime: 1, Target: target, Thresholds: []int{1}},
		"no thresholds":  {Model: m, MaxTime: 1, Target: target, Level: level},
		"non-increasing": {Model: m, MaxTime: 1, Target: target, Level: level, Thresholds: []int{2, 2}},
	}
	for name, sp := range cases {
		if _, err := sp.Estimate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}
