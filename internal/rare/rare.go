// Package rare implements multilevel splitting (fixed-effort RESTART) for
// transient rare-event probabilities of Stochastic Activity Networks — a
// second, independent rare-event method next to the importance sampling
// built into internal/sim.
//
// The estimator targets P(the Target predicate holds by MaxTime). An
// importance function Level maps markings to integers; trajectories are
// grown stage by stage: stage l runs Effort trajectories from entry states
// of threshold l and records the fraction that reach threshold l+1 (or the
// target) before MaxTime, together with the new entry states. The product
// of the stage fractions estimates the rare-event probability. Confidence
// intervals come from independent replications of the whole cascade.
//
// Splitting restarts trajectories from captured markings, which is
// distribution-exact here because all activities are exponential
// (memoryless); the estimator is validated against exact CTMC solutions in
// the tests.
package rare

import (
	"errors"
	"fmt"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
)

// Splitting configures a fixed-effort multilevel splitting estimation.
type Splitting struct {
	// Model is the SAN to simulate (exponential activities only).
	Model *san.Model
	// MaxTime is the transient horizon.
	MaxTime float64
	// Target is the rare event (treated as absorbing).
	Target san.Predicate
	// Level is the importance function guiding the splitting; it should
	// grow as the system approaches the target (for the AHS model: the
	// number of active failure modes).
	Level func(mk *san.Marking) int
	// Thresholds are the strictly increasing level values defining the
	// stages. A trajectory "enters" stage l+1 when Level reaches
	// Thresholds[l]. The final stage runs until the Target itself.
	Thresholds []int
	// Effort is the number of trajectories per stage (default 1000).
	Effort int
	// Replications is the number of independent cascades used for the
	// confidence interval (default 10).
	Replications int
	// Seed selects the deterministic random stream family.
	Seed uint64
}

// Result is the splitting estimate.
type Result struct {
	// Interval is the estimated probability with its 95% CI over
	// replications.
	Interval stats.Interval
	// StageFractions holds, per replication, the per-stage conditional
	// fractions (diagnostics: fractions near 0 or 1 indicate badly placed
	// thresholds).
	StageFractions [][]float64
}

func (s *Splitting) validate() error {
	var errs []error
	if s.Model == nil {
		errs = append(errs, errors.New("rare: nil model"))
	}
	if !(s.MaxTime > 0) {
		errs = append(errs, fmt.Errorf("rare: MaxTime %v must be positive", s.MaxTime))
	}
	if s.Target == nil {
		errs = append(errs, errors.New("rare: nil target predicate"))
	}
	if s.Level == nil {
		errs = append(errs, errors.New("rare: nil level function"))
	}
	if len(s.Thresholds) == 0 {
		errs = append(errs, errors.New("rare: no thresholds"))
	}
	for i := 1; i < len(s.Thresholds); i++ {
		if s.Thresholds[i] <= s.Thresholds[i-1] {
			errs = append(errs, fmt.Errorf("rare: thresholds not increasing at %d", i))
		}
	}
	return errors.Join(errs...)
}

// entry is a captured level-crossing state.
type entry struct {
	mk *san.Marking
	t  float64
}

// Estimate runs the splitting cascade and returns the estimated transient
// probability with a confidence interval over replications.
func (s *Splitting) Estimate() (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	effort := s.Effort
	if effort == 0 {
		effort = 1000
	}
	reps := s.Replications
	if reps == 0 {
		reps = 10
	}

	src := rng.NewSource(s.Seed)
	var acc stats.Welford
	result := &Result{}
	streamIdx := uint64(0)
	for rep := 0; rep < reps; rep++ {
		p, fractions, err := s.cascade(src, &streamIdx, effort)
		if err != nil {
			return nil, err
		}
		acc.Add(p)
		result.StageFractions = append(result.StageFractions, fractions)
	}
	result.Interval = acc.CI(0.95)
	return result, nil
}

// cascade runs one full splitting replication.
func (s *Splitting) cascade(src *rng.Source, streamIdx *uint64, effort int) (float64, []float64, error) {
	// Stage l (0-based): start from entries of stage l, run until
	// Level >= Thresholds[l] or Target; the last stage runs to Target.
	entries := []entry{{mk: nil, t: 0}} // nil marking = model initial state
	estimate := 1.0
	fractions := make([]float64, 0, len(s.Thresholds)+1)

	for stage := 0; stage <= len(s.Thresholds); stage++ {
		final := stage == len(s.Thresholds)
		var stop san.Predicate
		if final {
			stop = s.Target
		} else {
			threshold := s.Thresholds[stage]
			stop = func(mk *san.Marking) bool {
				return s.Target(mk) || s.Level(mk) >= threshold
			}
		}
		runner, err := sim.NewRunner(s.Model, sim.Options{
			MaxTime: s.MaxTime,
			Stop:    stop,
		})
		if err != nil {
			return 0, nil, err
		}

		var nextEntries []entry
		hits := 0
		for i := 0; i < effort; i++ {
			stream := src.Stream(*streamIdx)
			*streamIdx++
			e := entries[stream.Intn(len(entries))]
			// An entry that already satisfies the stage's stop condition
			// (e.g. it over-shot several levels at once) passes through.
			if e.mk != nil && stop(e.mk) {
				hits++
				nextEntries = append(nextEntries, e)
				continue
			}
			res, err := runner.RunFrom(e.mk, e.t, stream)
			if err != nil {
				return 0, nil, err
			}
			if res.Stopped {
				hits++
				nextEntries = append(nextEntries, entry{
					mk: runner.Marking().Clone(),
					t:  res.StopTime,
				})
			}
		}
		frac := float64(hits) / float64(effort)
		fractions = append(fractions, frac)
		estimate *= frac
		if hits == 0 {
			return 0, fractions, nil
		}
		entries = nextEntries
	}
	return estimate, fractions, nil
}
