package san

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildMM1K returns a tiny birth-death SAN used across tests: arrivals into
// a bounded queue place, departures out of it.
func buildMM1K(k int, lambda, mu float64) (*Model, PlaceID) {
	b := NewBuilder("mm1k")
	q := b.Place("queue", 0)
	b.Timed(TimedActivity{
		Name:    "arrive",
		Enabled: func(m *Marking) bool { return m.Tokens(q) < k },
		Rate:    ConstRate(lambda),
		Input:   Produce(q, 1),
	})
	b.Timed(TimedActivity{
		Name:    "depart",
		Enabled: HasTokens(q, 1),
		Rate:    ConstRate(mu),
		Input:   Consume(q, 1),
	})
	return b.MustBuild(), q
}

func TestBuilderBasicModel(t *testing.T) {
	m, q := buildMM1K(5, 1, 2)
	if m.Name() != "mm1k" {
		t.Fatalf("name %q", m.Name())
	}
	if m.NumPlaces() != 1 || m.NumTimed() != 2 || m.NumInstant() != 0 {
		t.Fatalf("unexpected structure: %d places, %d timed, %d instant",
			m.NumPlaces(), m.NumTimed(), m.NumInstant())
	}
	mk := m.InitialMarking()
	if mk.Tokens(q) != 0 {
		t.Fatalf("initial marking %d", mk.Tokens(q))
	}
	if id, ok := m.PlaceByName("queue"); !ok || id != q {
		t.Fatal("PlaceByName lookup failed")
	}
	if m.PlaceName(q) != "queue" {
		t.Fatalf("PlaceName %q", m.PlaceName(q))
	}
}

func TestBuilderDuplicatePlaceFails(t *testing.T) {
	b := NewBuilder("dup")
	b.Place("p", 0)
	b.Place("p", 1)
	b.Timed(TimedActivity{Name: "a", Rate: ConstRate(1)})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-place error")
	}
}

func TestBuilderCrossKindNameClash(t *testing.T) {
	b := NewBuilder("clash")
	b.Place("x", 0)
	b.Timed(TimedActivity{Name: "x", Rate: ConstRate(1)})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected cross-kind name clash error")
	}
}

func TestBuilderRequiresRateOrDelay(t *testing.T) {
	b := NewBuilder("norate")
	b.Timed(TimedActivity{Name: "a"})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "neither rate nor delay") {
		t.Fatal("expected missing-rate error")
	}
}

func TestBuilderRejectsRateAndDelay(t *testing.T) {
	b := NewBuilder("both")
	b.Timed(TimedActivity{Name: "a", Rate: ConstRate(1), Delay: Deterministic{Value: 1}})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "both rate and delay") {
		t.Fatal("expected both-rate-and-delay error")
	}
}

func TestBuilderValidatesDelayDistribution(t *testing.T) {
	b := NewBuilder("baddelay")
	b.Timed(TimedActivity{Name: "a", Delay: Uniform{Lo: 5, Hi: 2}})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected invalid-distribution error")
	}
}

func TestBuilderRequiresInstantPredicate(t *testing.T) {
	b := NewBuilder("nopred")
	b.Instant(InstantActivity{Name: "a"})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "enabling predicate") {
		t.Fatal("expected missing-predicate error")
	}
}

func TestBuilderEmptyModelFails(t *testing.T) {
	b := NewBuilder("empty")
	b.Place("p", 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected no-activities error")
	}
}

func TestBuilderNegativeInitialMarking(t *testing.T) {
	b := NewBuilder("neg")
	b.Place("p", -1)
	b.Timed(TimedActivity{Name: "a", Rate: ConstRate(1)})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected negative-initial-marking error")
	}
}

func TestBuilderBuildTwice(t *testing.T) {
	b := NewBuilder("twice")
	b.Timed(TimedActivity{Name: "a", Rate: ConstRate(1)})
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error on second Build")
	}
}

func TestScopeNamespacing(t *testing.T) {
	b := NewBuilder("scoped")
	shared := b.Place("shared", 1)
	sub := b.Scope("veh")
	local := sub.Place("cc", 1)
	sub.Timed(TimedActivity{
		Name:    "fail",
		Enabled: AllOf(HasTokens(local, 1), HasTokens(shared, 1)),
		Rate:    ConstRate(1),
		Input:   Seq(Consume(local, 1), Consume(shared, 1)),
	})
	m := b.MustBuild()
	if _, ok := m.PlaceByName("veh.cc"); !ok {
		t.Fatal("scoped place not namespaced as veh.cc")
	}
	if m.TimedIndex("veh.fail") < 0 {
		t.Fatal("scoped activity not namespaced as veh.fail")
	}
}

func TestRepCreatesReplicas(t *testing.T) {
	b := NewBuilder("rep")
	shared := b.Place("pool", 3)
	b.Rep("v", 3, func(rb *Builder, i int) {
		p := rb.Place("mine", 0)
		rb.Timed(TimedActivity{
			Name:    "grab",
			Enabled: HasTokens(shared, 1),
			Rate:    ConstRate(float64(i + 1)),
			Input:   Move(shared, p, 1),
		})
	})
	m := b.MustBuild()
	if m.NumTimed() != 3 || m.NumPlaces() != 4 {
		t.Fatalf("rep structure: %d timed, %d places", m.NumTimed(), m.NumPlaces())
	}
	for _, name := range []string{"v[0].grab", "v[1].grab", "v[2].grab"} {
		if m.TimedIndex(name) < 0 {
			t.Fatalf("missing replica activity %q", name)
		}
	}
}

func TestRepRejectsNonPositiveCount(t *testing.T) {
	b := NewBuilder("rep0")
	b.Rep("v", 0, func(rb *Builder, i int) {})
	b.Timed(TimedActivity{Name: "a", Rate: ConstRate(1)})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected Rep count error")
	}
}

func TestJoinComposesSubmodels(t *testing.T) {
	b := NewBuilder("join")
	shared := b.Place("bus", 0)
	b.Join(map[string]func(*Builder){
		"producer": func(jb *Builder) {
			jb.Timed(TimedActivity{Name: "put", Rate: ConstRate(1), Input: Produce(shared, 1)})
		},
		"consumer": func(jb *Builder) {
			jb.Timed(TimedActivity{
				Name: "get", Enabled: HasTokens(shared, 1),
				Rate: ConstRate(1), Input: Consume(shared, 1),
			})
		},
	})
	m := b.MustBuild()
	if m.TimedIndex("producer.put") < 0 || m.TimedIndex("consumer.get") < 0 {
		t.Fatal("join submodels not namespaced")
	}
}

func TestMarkingCloneIndependence(t *testing.T) {
	m, q := buildMM1K(5, 1, 1)
	a := m.InitialMarking()
	bm := a.Clone()
	a.Add(q, 3)
	if bm.Tokens(q) != 0 {
		t.Fatal("clone aliased original storage")
	}
	if a.Equal(bm) {
		t.Fatal("Equal failed to detect difference")
	}
	bm.Add(q, 3)
	if !a.Equal(bm) {
		t.Fatal("Equal failed on identical markings")
	}
}

func TestMarkingCopyFrom(t *testing.T) {
	m, q := buildMM1K(5, 1, 1)
	a := m.InitialMarking()
	a.Add(q, 2)
	bm := m.InitialMarking()
	bm.CopyFrom(a)
	if bm.Tokens(q) != 2 {
		t.Fatal("CopyFrom missed token state")
	}
	a.Add(q, 1)
	if bm.Tokens(q) != 2 {
		t.Fatal("CopyFrom aliased storage")
	}
}

func TestMarkingNegativePanics(t *testing.T) {
	m, q := buildMM1K(5, 1, 1)
	mk := m.InitialMarking()
	defer func() {
		if recover() == nil {
			t.Fatal("negative marking did not panic")
		}
	}()
	mk.Add(q, -1)
}

func TestExtendedPlaceOperations(t *testing.T) {
	b := NewBuilder("ext")
	e := b.ExtPlace("platoon", []int{10, 20, 30})
	b.Timed(TimedActivity{Name: "noop", Rate: ConstRate(1)})
	m := b.MustBuild()
	mk := m.InitialMarking()

	if mk.ExtLen(e) != 3 || mk.ExtAt(e, 1) != 20 {
		t.Fatalf("initial ext contents %v", mk.Ext(e))
	}
	if got := mk.ExtIndexOf(e, 30); got != 2 {
		t.Fatalf("ExtIndexOf(30) = %d", got)
	}
	if got := mk.ExtIndexOf(e, 99); got != -1 {
		t.Fatalf("ExtIndexOf(99) = %d", got)
	}
	mk.ExtAppend(e, 40)
	mk.ExtRemoveAt(e, 0)
	want := []int{20, 30, 40}
	for i, v := range want {
		if mk.ExtAt(e, i) != v {
			t.Fatalf("after ops, ext = %v, want %v", mk.Ext(e), want)
		}
	}
	mk.ExtInsertAt(e, 1, 25)
	if mk.ExtAt(e, 1) != 25 || mk.ExtLen(e) != 4 {
		t.Fatalf("after insert, ext = %v", mk.Ext(e))
	}
	mk.ExtSet(e, 0, 21)
	if mk.ExtAt(e, 0) != 21 {
		t.Fatal("ExtSet failed")
	}
	mk.ExtClear(e)
	if mk.ExtLen(e) != 0 {
		t.Fatal("ExtClear failed")
	}
	// Initial marking must be unaffected by mutations (deep copy).
	if fresh := m.InitialMarking(); fresh.ExtLen(e) != 3 {
		t.Fatal("mutations leaked into the model's initial extended marking")
	}
}

func TestExtCloneDeepCopies(t *testing.T) {
	b := NewBuilder("extclone")
	e := b.ExtPlace("arr", []int{1})
	b.Timed(TimedActivity{Name: "noop", Rate: ConstRate(1)})
	m := b.MustBuild()
	a := m.InitialMarking()
	cp := a.Clone()
	a.ExtSet(e, 0, 99)
	if cp.ExtAt(e, 0) != 1 {
		t.Fatal("Clone aliased extended place storage")
	}
}

func TestPredicateCombinators(t *testing.T) {
	m, q := buildMM1K(5, 1, 1)
	mk := m.InitialMarking()
	mk.Add(q, 2)
	if !AllOf(HasTokens(q, 1), HasTokens(q, 2))(mk) {
		t.Fatal("AllOf failed")
	}
	if AllOf(HasTokens(q, 1), HasTokens(q, 3))(mk) {
		t.Fatal("AllOf false positive")
	}
	if !AnyOf(HasTokens(q, 9), HasTokens(q, 1))(mk) {
		t.Fatal("AnyOf failed")
	}
	if AnyOf(HasTokens(q, 9), HasTokens(q, 8))(mk) {
		t.Fatal("AnyOf false positive")
	}
	if Not(HasTokens(q, 1))(mk) {
		t.Fatal("Not failed")
	}
}

func TestEffectCombinators(t *testing.T) {
	b := NewBuilder("fx")
	p1 := b.Place("a", 5)
	p2 := b.Place("b", 0)
	b.Timed(TimedActivity{Name: "noop", Rate: ConstRate(1)})
	m := b.MustBuild()
	mk := m.InitialMarking()
	Seq(Move(p1, p2, 2), Produce(p2, 1), nil)(mk)
	if mk.Tokens(p1) != 3 || mk.Tokens(p2) != 3 {
		t.Fatalf("after Seq: a=%d b=%d", mk.Tokens(p1), mk.Tokens(p2))
	}
}

func TestCaseWeights(t *testing.T) {
	m, q := buildMM1K(5, 1, 1)
	mk := m.InitialMarking()
	cases := []Case{
		{Weight: ConstWeight(1)},
		{}, // nil weight = 1
		{Weight: func(mm *Marking) float64 { return float64(mm.Tokens(q)) }},
	}
	ws, err := CaseWeights(cases, mk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0] != 1 || ws[1] != 1 || ws[2] != 0 {
		t.Fatalf("weights %v", ws)
	}
	// Implicit unit case for empty case lists.
	ws, err = CaseWeights(nil, mk, ws)
	if err != nil || len(ws) != 1 || ws[0] != 1 {
		t.Fatalf("implicit case weights %v, %v", ws, err)
	}
}

func TestCaseWeightsErrors(t *testing.T) {
	m, _ := buildMM1K(5, 1, 1)
	mk := m.InitialMarking()
	if _, err := CaseWeights([]Case{{Weight: ConstWeight(-1)}}, mk, nil); err == nil {
		t.Fatal("expected negative-weight error")
	}
	if _, err := CaseWeights([]Case{{Weight: ConstWeight(0)}}, mk, nil); err == nil {
		t.Fatal("expected zero-total error")
	}
}

func TestRateValidation(t *testing.T) {
	m, _ := buildMM1K(5, 1, 1)
	mk := m.InitialMarking()
	bad := TimedActivity{Name: "bad", Rate: ConstRate(0)}
	if _, err := bad.RateIn(mk); err == nil {
		t.Fatal("expected invalid-rate error for zero rate")
	}
	good := TimedActivity{Name: "good", Rate: ConstRate(2.5)}
	r, err := good.RateIn(mk)
	if err != nil || r != 2.5 {
		t.Fatalf("RateIn = %v, %v", r, err)
	}
}

func TestFireTimedAppliesInputThenCase(t *testing.T) {
	b := NewBuilder("order")
	p := b.Place("p", 1)
	trace := []string{}
	act := TimedActivity{
		Name: "a",
		Rate: ConstRate(1),
		Input: func(m *Marking) {
			trace = append(trace, "input")
			m.Add(p, -1)
		},
		Cases: []Case{
			{Output: func(m *Marking) { trace = append(trace, "case0") }},
			{Output: func(m *Marking) { trace = append(trace, "case1") }},
		},
	}
	b.Timed(act)
	m := b.MustBuild()
	mk := m.InitialMarking()
	FireTimed(m.Timed(0), 1, mk)
	if len(trace) != 2 || trace[0] != "input" || trace[1] != "case1" {
		t.Fatalf("firing order %v", trace)
	}
	if mk.Tokens(p) != 0 {
		t.Fatal("input effect not applied")
	}
}

func TestMarkingEqualAcrossModels(t *testing.T) {
	m1, _ := buildMM1K(5, 1, 1)
	m2, _ := buildMM1K(5, 1, 1)
	if m1.InitialMarking().Equal(m2.InitialMarking()) {
		t.Fatal("markings of distinct models must not compare equal")
	}
}

func TestExtInsertRemovePreservesOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBuilder("prop")
		e := b.ExtPlace("arr", nil)
		b.Timed(TimedActivity{Name: "noop", Rate: ConstRate(1)})
		m := b.MustBuild()
		mk := m.InitialMarking()
		var ref []int
		for n, op := range ops {
			if len(ref) == 0 || op%2 == 0 {
				pos := 0
				if len(ref) > 0 {
					pos = int(op) % (len(ref) + 1)
				}
				mk.ExtInsertAt(e, pos, n)
				ref = append(ref, 0)
				copy(ref[pos+1:], ref[pos:])
				ref[pos] = n
			} else {
				pos := int(op) % len(ref)
				mk.ExtRemoveAt(e, pos)
				ref = append(ref[:pos], ref[pos+1:]...)
			}
		}
		if mk.ExtLen(e) != len(ref) {
			return false
		}
		for i, v := range ref {
			if mk.ExtAt(e, i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelAccessors(t *testing.T) {
	b := NewBuilder("acc")
	p := b.Place("p", 1)
	e := b.ExtPlace("arr", []int{5})
	b.Timed(TimedActivity{Name: "t", Rate: ConstRate(1)})
	b.Instant(InstantActivity{Name: "i", Enabled: HasTokens(p, 99)})
	m := b.MustBuild()

	if m.NumExtPlaces() != 1 {
		t.Fatalf("NumExtPlaces %d", m.NumExtPlaces())
	}
	if id, ok := m.ExtPlaceByName("arr"); !ok || id != e {
		t.Fatal("ExtPlaceByName failed")
	}
	if _, ok := m.ExtPlaceByName("nope"); ok {
		t.Fatal("ExtPlaceByName false positive")
	}
	if m.ExtPlaceName(e) != "arr" {
		t.Fatalf("ExtPlaceName %q", m.ExtPlaceName(e))
	}
	if m.Instant(0).Name != "i" {
		t.Fatalf("Instant(0).Name %q", m.Instant(0).Name)
	}
	if m.TimedIndex("missing") != -1 {
		t.Fatal("TimedIndex for missing activity must be -1")
	}
	mk := m.InitialMarking()
	if mk.Model() != m {
		t.Fatal("Marking.Model mismatch")
	}
	if got := mk.Ext(e); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Ext contents %v", got)
	}
	// Timed activity with nil predicate is always enabled.
	if !m.Timed(0).EnabledIn(mk) {
		t.Fatal("nil-predicate activity must be enabled")
	}
	if !m.Timed(0).Exponential() {
		t.Fatal("rate-based activity must report Exponential")
	}
	if m.Instant(0).EnabledIn(mk) {
		t.Fatal("instant with unmet predicate must be disabled")
	}
	// FireInstant applies input + case like FireTimed.
	fired := 0
	act := InstantActivity{
		Name:    "x",
		Enabled: func(*Marking) bool { return true },
		Input:   func(*Marking) { fired++ },
	}
	FireInstant(&act, 0, mk)
	if fired != 1 {
		t.Fatal("FireInstant did not apply input effect")
	}
}

func TestMarkingEqualDiffersOnExt(t *testing.T) {
	b := NewBuilder("eqext")
	e := b.ExtPlace("arr", []int{1, 2})
	b.Timed(TimedActivity{Name: "t", Rate: ConstRate(1)})
	m := b.MustBuild()
	x, y := m.InitialMarking(), m.InitialMarking()
	if !x.Equal(y) {
		t.Fatal("identical markings must compare equal")
	}
	y.ExtSet(e, 1, 99)
	if x.Equal(y) {
		t.Fatal("ext difference not detected")
	}
	y.ExtSet(e, 1, 2)
	y.ExtAppend(e, 3)
	if x.Equal(y) {
		t.Fatal("ext length difference not detected")
	}
	x.CopyFrom(y)
	if !x.Equal(y) {
		t.Fatal("CopyFrom did not reproduce ext state")
	}
}
