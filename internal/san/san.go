// Package san implements Stochastic Activity Networks (SAN), the modeling
// formalism of Sanders & Meyer used by the paper (via the Möbius tool) to
// describe the Automated Highway System safety model.
//
// A SAN is a stochastic extension of Petri nets consisting of:
//
//   - places holding integer token counts, plus extended places holding
//     ordered integer arrays (used by the paper for platoon composition and
//     the per-class maneuver lists of the Severity submodel);
//   - timed activities with marking-dependent exponential firing rates;
//   - instantaneous activities that fire as soon as they are enabled, with
//     integer priorities resolving simultaneity;
//   - input gates (enabling predicate + marking-change function) and output
//     gates (marking-change function), generalising plain arcs;
//   - cases: probabilistic branches on activity completion.
//
// Models are built with a Builder, optionally through the Rep and Join
// composition helpers mirroring the Möbius Rep/Join operators used in
// Figure 9 of the paper. Execution lives in internal/sim; exact numerical
// solution of exponential-only models lives in internal/ctmc.
package san

import (
	"fmt"
	"math"
	"strings"
)

// PlaceID identifies a simple (integer-marked) place within a Model.
type PlaceID int

// ExtPlaceID identifies an extended place (ordered int array) within a Model.
type ExtPlaceID int

// Predicate decides whether an activity is enabled in a marking. Predicates
// must not modify the marking.
type Predicate func(m *Marking) bool

// Effect applies a marking change (an input- or output-gate function).
type Effect func(m *Marking)

// RateFn returns the instantaneous firing rate of a timed activity in a
// marking. It is only consulted while the activity is enabled and must
// return a strictly positive, finite value there.
type RateFn func(m *Marking) float64

// WeightFn returns the (unnormalised) weight of a case in a marking.
type WeightFn func(m *Marking) float64

// Case is one probabilistic branch of an activity. On completion, a case is
// selected with probability proportional to Weight and its Output effect is
// applied after the activity's input effect.
type Case struct {
	// Weight is the unnormalised selection weight; nil means constant 1.
	Weight WeightFn
	// Output applies the case's marking change; nil means no change.
	Output Effect
}

// TimedActivity completes after a random delay.
//
// Exactly one of Rate and Delay must be set. Rate describes a (possibly
// marking-dependent) exponential delay executable by both the race-semantics
// executor (sim.Runner, which also supports importance sampling) and the
// event-queue executor (sim.GeneralRunner). Delay describes an arbitrary
// positive distribution and restricts the model to the event-queue executor.
type TimedActivity struct {
	Name string
	// Enabled gates the activity; nil means always enabled.
	Enabled Predicate
	// Rate is the exponential completion rate (marking-dependent allowed).
	Rate RateFn
	// Delay is a general firing-delay distribution, sampled when the
	// activity becomes enabled ("restart" reactivation: disabling discards
	// the sampled clock).
	Delay Distribution
	// Input is applied on completion before the selected case's Output;
	// nil means no change.
	Input Effect
	// Cases are the completion branches; empty means a single unit case.
	Cases []Case
}

// Exponential reports whether the activity has an exponential delay
// (a Rate function rather than a general Delay distribution).
func (a *TimedActivity) Exponential() bool { return a.Delay == nil }

// InstantActivity completes in zero time as soon as it is enabled.
// Lower Priority values fire first when several are enabled simultaneously.
type InstantActivity struct {
	Name     string
	Priority int
	// Enabled gates the activity; required (an always-enabled instantaneous
	// activity would loop forever).
	Enabled Predicate
	Input   Effect
	Cases   []Case
}

// Model is an immutable SAN structure shared by all markings/trajectories.
type Model struct {
	name       string
	places     []placeDef
	extPlaces  []extPlaceDef
	timed      []TimedActivity
	instants   []InstantActivity
	placeIdx   map[string]PlaceID
	extIdx     map[string]ExtPlaceID
	activities map[string]bool
}

type placeDef struct {
	name    string
	initial int
}

type extPlaceDef struct {
	name    string
	initial []int
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// NumPlaces returns the number of simple places.
func (m *Model) NumPlaces() int { return len(m.places) }

// NumExtPlaces returns the number of extended places.
func (m *Model) NumExtPlaces() int { return len(m.extPlaces) }

// NumTimed returns the number of timed activities.
func (m *Model) NumTimed() int { return len(m.timed) }

// NumInstant returns the number of instantaneous activities.
func (m *Model) NumInstant() int { return len(m.instants) }

// Timed returns the timed activity with index i.
func (m *Model) Timed(i int) *TimedActivity { return &m.timed[i] }

// Instant returns the instantaneous activity with index i.
func (m *Model) Instant(i int) *InstantActivity { return &m.instants[i] }

// TimedIndex returns the index of the named timed activity, or -1.
func (m *Model) TimedIndex(name string) int {
	for i := range m.timed {
		if m.timed[i].Name == name {
			return i
		}
	}
	return -1
}

// PlaceByName returns the id of the named simple place.
func (m *Model) PlaceByName(name string) (PlaceID, bool) {
	id, ok := m.placeIdx[name]
	return id, ok
}

// ExtPlaceByName returns the id of the named extended place.
func (m *Model) ExtPlaceByName(name string) (ExtPlaceID, bool) {
	id, ok := m.extIdx[name]
	return id, ok
}

// PlaceName returns the name of a simple place.
func (m *Model) PlaceName(p PlaceID) string { return m.places[p].name }

// ExtPlaceName returns the name of an extended place.
func (m *Model) ExtPlaceName(p ExtPlaceID) string { return m.extPlaces[p].name }

// PlaceInitial returns the initial token count of a simple place.
func (m *Model) PlaceInitial(p PlaceID) int { return m.places[p].initial }

// ExtPlaceInitial returns a copy of an extended place's initial contents.
func (m *Model) ExtPlaceInitial(p ExtPlaceID) []int {
	return append([]int(nil), m.extPlaces[p].initial...)
}

// InitialMarking returns a fresh marking holding every place's initial value.
func (m *Model) InitialMarking() *Marking {
	mk := &Marking{
		model:  m,
		tokens: make([]int, len(m.places)),
		ext:    make([][]int, len(m.extPlaces)),
	}
	for i, p := range m.places {
		mk.tokens[i] = p.initial
	}
	for i, p := range m.extPlaces {
		mk.ext[i] = append([]int(nil), p.initial...)
	}
	return mk
}

// AccessObserver receives a notification for every place-level read and
// write performed through a Marking's accessor methods. It is the
// introspection hook behind static model analysis: internal/sanlint uses it
// to discover which places each predicate, rate, weight and effect actually
// touches, without parsing any code. Simulation leaves the observer nil,
// which costs one predictable branch per access.
//
// Observer callbacks must not mutate the marking.
type AccessObserver interface {
	ReadPlace(p PlaceID)
	WritePlace(p PlaceID)
	ReadExtPlace(p ExtPlaceID)
	WriteExtPlace(p ExtPlaceID)
}

// Marking is the complete state of a SAN: token counts for simple places and
// ordered arrays for extended places. Markings are mutated in place by
// activity effects; Clone produces independent copies for parallel batches.
type Marking struct {
	model  *Model
	tokens []int
	ext    [][]int
	obs    AccessObserver
}

// Model returns the model this marking belongs to.
func (mk *Marking) Model() *Model { return mk.model }

// SetObserver attaches (or with nil detaches) an access observer. The
// observer is inherited by Clone so that analysis code sees accesses on
// derived markings too.
func (mk *Marking) SetObserver(o AccessObserver) { mk.obs = o }

// Clone returns a deep copy of the marking (sharing the observer, if any).
func (mk *Marking) Clone() *Marking {
	cp := &Marking{
		model:  mk.model,
		tokens: append([]int(nil), mk.tokens...),
		ext:    make([][]int, len(mk.ext)),
		obs:    mk.obs,
	}
	for i, e := range mk.ext {
		cp.ext[i] = append([]int(nil), e...)
	}
	return cp
}

// CopyFrom overwrites mk with the contents of src (same model required).
// It reuses mk's storage where possible, avoiding allocation in batch loops.
func (mk *Marking) CopyFrom(src *Marking) {
	if mk.model != src.model {
		panic("san: CopyFrom across models")
	}
	copy(mk.tokens, src.tokens)
	for i, e := range src.ext {
		mk.ext[i] = append(mk.ext[i][:0], e...)
	}
}

// Equal reports whether two markings of the same model are identical.
func (mk *Marking) Equal(o *Marking) bool {
	if mk.model != o.model {
		return false
	}
	for i, t := range mk.tokens {
		if o.tokens[i] != t {
			return false
		}
	}
	for i, e := range mk.ext {
		if len(e) != len(o.ext[i]) {
			return false
		}
		for j, v := range e {
			if o.ext[i][j] != v {
				return false
			}
		}
	}
	return true
}

// Tokens returns the token count of a simple place.
func (mk *Marking) Tokens(p PlaceID) int {
	if mk.obs != nil {
		mk.obs.ReadPlace(p)
	}
	return mk.tokens[p]
}

// SetTokens sets the token count of a simple place. Negative counts panic:
// they indicate a modeling error (an effect firing while its predicate is
// false).
func (mk *Marking) SetTokens(p PlaceID, n int) {
	if mk.obs != nil {
		mk.obs.WritePlace(p)
	}
	if n < 0 {
		panic(fmt.Sprintf("san: negative marking %d for place %q", n, mk.model.places[p].name))
	}
	mk.tokens[p] = n
}

// Add adjusts the token count of a simple place by delta (panics if the
// result would be negative).
func (mk *Marking) Add(p PlaceID, delta int) {
	mk.SetTokens(p, mk.Tokens(p)+delta)
}

// Ext returns the contents of an extended place. The returned slice aliases
// the marking; callers must not retain it across effects.
func (mk *Marking) Ext(p ExtPlaceID) []int {
	if mk.obs != nil {
		mk.obs.ReadExtPlace(p)
	}
	return mk.ext[p]
}

// ExtLen returns the length of an extended place's array.
func (mk *Marking) ExtLen(p ExtPlaceID) int {
	if mk.obs != nil {
		mk.obs.ReadExtPlace(p)
	}
	return len(mk.ext[p])
}

// ExtAppend appends v to an extended place's array.
func (mk *Marking) ExtAppend(p ExtPlaceID, v int) {
	if mk.obs != nil {
		mk.obs.WriteExtPlace(p)
	}
	mk.ext[p] = append(mk.ext[p], v)
}

// ExtAt returns element i of an extended place's array.
func (mk *Marking) ExtAt(p ExtPlaceID, i int) int {
	if mk.obs != nil {
		mk.obs.ReadExtPlace(p)
	}
	return mk.ext[p][i]
}

// ExtSet sets element i of an extended place's array.
func (mk *Marking) ExtSet(p ExtPlaceID, i, v int) {
	if mk.obs != nil {
		mk.obs.WriteExtPlace(p)
	}
	mk.ext[p][i] = v
}

// ExtRemoveAt removes element i, preserving the order of the remainder
// (platoon positions are ordered, so removal must not reshuffle).
func (mk *Marking) ExtRemoveAt(p ExtPlaceID, i int) {
	if mk.obs != nil {
		mk.obs.WriteExtPlace(p)
	}
	arr := mk.ext[p]
	mk.ext[p] = append(arr[:i], arr[i+1:]...)
}

// ExtIndexOf returns the first index of v in the extended place, or -1.
func (mk *Marking) ExtIndexOf(p ExtPlaceID, v int) int {
	if mk.obs != nil {
		mk.obs.ReadExtPlace(p)
	}
	for i, x := range mk.ext[p] {
		if x == v {
			return i
		}
	}
	return -1
}

// ExtClear empties an extended place.
func (mk *Marking) ExtClear(p ExtPlaceID) {
	if mk.obs != nil {
		mk.obs.WriteExtPlace(p)
	}
	mk.ext[p] = mk.ext[p][:0]
}

// ExtInsertAt inserts v at position i (0 <= i <= len).
func (mk *Marking) ExtInsertAt(p ExtPlaceID, i, v int) {
	if mk.obs != nil {
		mk.obs.WriteExtPlace(p)
	}
	arr := mk.ext[p]
	arr = append(arr, 0)
	copy(arr[i+1:], arr[i:])
	arr[i] = v
	mk.ext[p] = arr
}

// Summary returns a compact human-readable description of the marking:
// every non-zero simple place and non-empty extended place, in model order.
// It reads the marking directly (no observer notifications), so diagnostics
// never pollute access traces.
func (mk *Marking) Summary() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	sep := func() {
		if !first {
			b.WriteString(", ")
		}
		first = false
	}
	for i, n := range mk.tokens {
		if n == 0 {
			continue
		}
		sep()
		fmt.Fprintf(&b, "%s=%d", mk.model.places[i].name, n)
	}
	for i, e := range mk.ext {
		if len(e) == 0 {
			continue
		}
		sep()
		fmt.Fprintf(&b, "%s=%v", mk.model.extPlaces[i].name, e)
	}
	if first {
		b.WriteString("empty")
	}
	b.WriteByte('}')
	return b.String()
}

// enabled reports whether a timed activity is enabled (nil predicate =>
// always enabled).
func (a *TimedActivity) enabled(mk *Marking) bool {
	return a.Enabled == nil || a.Enabled(mk)
}

// EnabledIn reports whether the timed activity is enabled in mk.
func (a *TimedActivity) EnabledIn(mk *Marking) bool { return a.enabled(mk) }

// RateIn returns the activity's rate in mk, validating positivity.
func (a *TimedActivity) RateIn(mk *Marking) (float64, error) {
	r := a.Rate(mk)
	if !(r > 0) || math.IsInf(r, 1) {
		return 0, fmt.Errorf("san: activity %q has invalid rate %v while enabled", a.Name, r)
	}
	return r, nil
}

// EnabledIn reports whether the instantaneous activity is enabled in mk.
func (a *InstantActivity) EnabledIn(mk *Marking) bool { return a.Enabled(mk) }

// Fire applies an activity completion to mk: input effect, then the chosen
// case's output effect. caseIdx must be valid for the activity.
func fire(input Effect, cases []Case, caseIdx int, mk *Marking) {
	if input != nil {
		input(mk)
	}
	if len(cases) > 0 {
		if out := cases[caseIdx].Output; out != nil {
			out(mk)
		}
	}
}

// FireTimed applies completion of timed activity a with the chosen case.
func FireTimed(a *TimedActivity, caseIdx int, mk *Marking) {
	fire(a.Input, a.Cases, caseIdx, mk)
}

// FireInstant applies completion of instantaneous activity a with the chosen
// case.
func FireInstant(a *InstantActivity, caseIdx int, mk *Marking) {
	fire(a.Input, a.Cases, caseIdx, mk)
}

// CaseWeightError reports an invalid case-weight evaluation. It names the
// activity and describes the marking it was evaluated in, so both the
// simulator and the model linter (internal/sanlint) can surface actionable
// diagnostics instead of a bare "invalid weight" string.
type CaseWeightError struct {
	// Activity is the offending activity's qualified name (empty when the
	// caller did not know it).
	Activity string
	// Case is the index of the offending case, or -1 when the total over
	// all cases is at fault.
	Case int
	// Weight is the offending weight value (the total when Case == -1).
	Weight float64
	// Marking is the compact summary (Marking.Summary) of the marking the
	// weights were evaluated in.
	Marking string
}

func (e *CaseWeightError) Error() string {
	who := "case weights"
	if e.Activity != "" {
		who = fmt.Sprintf("activity %q", e.Activity)
	}
	if e.Case >= 0 {
		return fmt.Sprintf("san: %s: invalid weight %v for case %d in marking %s",
			who, e.Weight, e.Case, e.Marking)
	}
	return fmt.Sprintf("san: %s: case weights sum to %v in marking %s",
		who, e.Weight, e.Marking)
}

// CaseWeights fills weights with each case's weight in mk. A nil or empty
// case list yields the single implicit unit case. It returns a
// *CaseWeightError if any weight is negative or NaN, or the total weight is
// not positive. Callers that know the activity should prefer CaseWeightsFor,
// which produces a named diagnostic.
func CaseWeights(cases []Case, mk *Marking, weights []float64) ([]float64, error) {
	return CaseWeightsFor("", cases, mk, weights)
}

// CaseWeightsFor is CaseWeights with the owning activity's name attached to
// any error (see CaseWeightError).
func CaseWeightsFor(activity string, cases []Case, mk *Marking, weights []float64) ([]float64, error) {
	if len(cases) == 0 {
		return append(weights[:0], 1), nil
	}
	weights = weights[:0]
	total := 0.0
	for i, c := range cases {
		w := 1.0
		if c.Weight != nil {
			w = c.Weight(mk)
		}
		if w < 0 || math.IsNaN(w) {
			return nil, &CaseWeightError{Activity: activity, Case: i, Weight: w, Marking: mk.Summary()}
		}
		total += w
		weights = append(weights, w)
	}
	if total <= 0 {
		return nil, &CaseWeightError{Activity: activity, Case: -1, Weight: total, Marking: mk.Summary()}
	}
	return weights, nil
}
