package san

import (
	"math"
	"testing"

	"ahs/internal/rng"
)

func sampleMean(t *testing.T, d Distribution, n int) float64 {
	t.Helper()
	r := rng.NewStream(7)
	sum := 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		if x < 0 {
			t.Fatalf("%v sampled negative delay %v", d, x)
		}
		sum += x
	}
	return sum / float64(n)
}

func TestDistributionMeansMatchSamples(t *testing.T) {
	cases := []struct {
		d   Distribution
		tol float64 // relative tolerance on the sample mean
	}{
		{Exponential{Rate: 2}, 0.02},
		{Deterministic{Value: 3.5}, 0},
		{Uniform{Lo: 1, Hi: 3}, 0.02},
		{Erlang{K: 4, Rate: 2}, 0.02},
		{Weibull{Shape: 1.5, Scale: 2}, 0.02},
	}
	const n = 100000
	for _, c := range cases {
		got := sampleMean(t, c.d, n)
		want := c.d.Mean()
		if math.Abs(got-want) > c.tol*want+1e-12 {
			t.Errorf("%v: sample mean %v, analytic mean %v", c.d, got, want)
		}
	}
}

func TestExponentialWeibullShapeOneCoincide(t *testing.T) {
	// Weibull(shape=1, scale=s) is Exp(1/s): means must agree exactly.
	w := Weibull{Shape: 1, Scale: 2}
	e := Exponential{Rate: 0.5}
	if math.Abs(w.Mean()-e.Mean()) > 1e-12 {
		t.Fatalf("Weibull(1,2) mean %v != Exp(0.5) mean %v", w.Mean(), e.Mean())
	}
}

func TestDeterministicIsConstant(t *testing.T) {
	d := Deterministic{Value: 1.25}
	r := rng.NewStream(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 1.25 {
			t.Fatal("Deterministic sample varied")
		}
	}
}

func TestUniformSamplesWithinBounds(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 5}
	r := rng.NewStream(2)
	for i := 0; i < 10000; i++ {
		x := d.Sample(r)
		if x < 2 || x >= 5 {
			t.Fatalf("Uniform sample %v out of [2,5)", x)
		}
	}
}

func TestErlangVarianceBelowExponential(t *testing.T) {
	// Erlang(k) with matched mean has variance mean^2/k < mean^2.
	e := Erlang{K: 5, Rate: 5} // mean 1
	r := rng.NewStream(3)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := e.Sample(r)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	want := 1.0 / 5
	if math.Abs(variance-want) > 0.05*want {
		t.Fatalf("Erlang(5,5) variance %v, want %v", variance, want)
	}
}

func TestDistributionValidation(t *testing.T) {
	bad := []Distribution{
		Exponential{Rate: 0},
		Exponential{Rate: -1},
		Deterministic{Value: 0},
		Uniform{Lo: -1, Hi: 1},
		Uniform{Lo: 2, Hi: 2},
		Erlang{K: 0, Rate: 1},
		Erlang{K: 2, Rate: 0},
		Weibull{Shape: 0, Scale: 1},
		Weibull{Shape: 1, Scale: 0},
	}
	for _, d := range bad {
		if err := ValidateDistribution(d); err == nil {
			t.Errorf("%v: expected validation error", d)
		}
	}
	good := []Distribution{
		Exponential{Rate: 1},
		Deterministic{Value: 1},
		Uniform{Lo: 0, Hi: 1},
		Erlang{K: 3, Rate: 2},
		Weibull{Shape: 2, Scale: 1},
	}
	for _, d := range good {
		if err := ValidateDistribution(d); err != nil {
			t.Errorf("%v: unexpected error %v", d, err)
		}
		if d.String() == "" {
			t.Errorf("%v: empty String()", d)
		}
	}
}
