package san_test

import (
	"fmt"

	"ahs/internal/san"
)

// ExampleBuilder assembles a minimal SAN — an M/M/1/3 queue — and shows the
// Rep-style scoping used by the AHS model's vehicle replicas.
func ExampleBuilder() {
	b := san.NewBuilder("mm1k")
	queue := b.Place("queue", 0)
	b.Timed(san.TimedActivity{
		Name:    "arrive",
		Enabled: func(m *san.Marking) bool { return m.Tokens(queue) < 3 },
		Rate:    san.ConstRate(2.0),
		Input:   san.Produce(queue, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "depart",
		Enabled: san.HasTokens(queue, 1),
		Rate:    san.ConstRate(3.0),
		Input:   san.Consume(queue, 1),
	})
	// Two replicated observers sharing the queue place, as the Möbius Rep
	// operator would create them.
	b.Rep("sensor", 2, func(rb *san.Builder, i int) {
		seen := rb.Place("seen", 0)
		rb.Instant(san.InstantActivity{
			Name: "notice",
			Enabled: func(m *san.Marking) bool {
				return m.Tokens(queue) == 3 && m.Tokens(seen) == 0
			},
			Input: san.Produce(seen, 1),
		})
	})
	model := b.MustBuild()
	fmt.Printf("model %q: %d places, %d timed, %d instantaneous\n",
		model.Name(), model.NumPlaces(), model.NumTimed(), model.NumInstant())
	if id, ok := model.PlaceByName("sensor[1].seen"); ok {
		fmt.Println("replica place:", model.PlaceName(id))
	}
	// Output:
	// model "mm1k": 3 places, 2 timed, 2 instantaneous
	// replica place: sensor[1].seen
}
