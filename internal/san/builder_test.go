package san

import (
	"errors"
	"strings"
	"testing"
)

// These tests pin down the build-time rejection paths: a model whose gate
// predicates cannot even evaluate the initial marking must fail at Build,
// with a diagnostic naming the offending activity, rather than panicking
// thousands of trajectories later.

func TestBuildRejectsTimedPredicateOnUnknownPlace(t *testing.T) {
	b := NewBuilder("badgate")
	b.Place("p", 1)
	b.Timed(TimedActivity{
		Name: "move",
		Rate: ConstRate(1),
		// References a PlaceID the model does not have, as happens when a
		// gate closure captures a place of a different (sub)model.
		Enabled: func(mk *Marking) bool { return mk.Tokens(PlaceID(99)) > 0 },
	})
	_, err := b.Build()
	if err == nil {
		t.Fatal("expected build-time probe failure")
	}
	for _, want := range []string{`"move"`, "initial marking", "unknown place"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestBuildRejectsInstantPredicateOnUnknownExtPlace(t *testing.T) {
	b := NewBuilder("badinstant")
	b.Place("p", 1)
	b.Timed(TimedActivity{Name: "tick", Rate: ConstRate(1)})
	b.Instant(InstantActivity{
		Name:    "resolve",
		Enabled: func(mk *Marking) bool { return mk.ExtLen(ExtPlaceID(7)) > 0 },
	})
	_, err := b.Build()
	if err == nil {
		t.Fatal("expected build-time probe failure")
	}
	if !strings.Contains(err.Error(), `"resolve"`) {
		t.Errorf("error %q does not name the activity", err)
	}
}

// TestBuildDoesNotProbeEffects: effects may legitimately assume their
// predicate held (e.g. unguarded token consumption), so Build must not
// evaluate them against the initial marking.
func TestBuildDoesNotProbeEffects(t *testing.T) {
	b := NewBuilder("effects")
	p := b.Place("p", 0)
	b.Timed(TimedActivity{
		Name:    "consume",
		Rate:    ConstRate(1),
		Enabled: func(mk *Marking) bool { return mk.Tokens(p) > 0 },
		// Would panic in the initial marking (p would go negative).
		Input: func(mk *Marking) { mk.Add(p, -1) },
	})
	if _, err := b.Build(); err != nil {
		t.Fatalf("effects must not be probed at build time: %v", err)
	}
}

func TestCaseWeightErrorNamesActivityAndMarking(t *testing.T) {
	b := NewBuilder("weights")
	b.Place("q", 2)
	b.Timed(TimedActivity{Name: "a", Rate: ConstRate(1)})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mk := m.InitialMarking()

	_, err = CaseWeightsFor("collide", []Case{{Weight: ConstWeight(-0.5)}}, mk, nil)
	var cwe *CaseWeightError
	if !errors.As(err, &cwe) {
		t.Fatalf("want *CaseWeightError, got %T: %v", err, err)
	}
	if cwe.Activity != "collide" || cwe.Case != 0 || cwe.Weight != -0.5 {
		t.Fatalf("diagnostic fields %+v", cwe)
	}
	if !strings.Contains(cwe.Marking, "q=2") {
		t.Fatalf("marking summary %q missing place state", cwe.Marking)
	}
	for _, want := range []string{`"collide"`, "case 0", "q=2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("message %q missing %q", err, want)
		}
	}

	// A zero total is attributed to the whole case set, not one index.
	_, err = CaseWeightsFor("collide", []Case{{Weight: ConstWeight(0)}, {Weight: ConstWeight(0)}}, mk, nil)
	if !errors.As(err, &cwe) || cwe.Case != -1 {
		t.Fatalf("want total-weight diagnostic with Case=-1, got %v", err)
	}
	if !strings.Contains(err.Error(), "sum to 0") {
		t.Errorf("message %q should report the zero total", err)
	}
}

// TestBuildZeroPlaceModels pins the boundary between "degenerate but legal"
// and "rejected": a model needs at least one activity (an empty model has no
// behaviour to analyze), but zero places are fine — a pure event source
// with constant-rate activities is a legitimate SAN.
func TestBuildZeroPlaceModels(t *testing.T) {
	empty := NewBuilder("empty")
	if _, err := empty.Build(); err == nil || !strings.Contains(err.Error(), "no activities") {
		t.Fatalf("zero places + zero activities must be rejected, got %v", err)
	}

	pure := NewBuilder("pure-source")
	pure.Timed(TimedActivity{Name: "tick", Rate: ConstRate(1)})
	m, err := pure.Build()
	if err != nil {
		t.Fatalf("zero-place model with activities must build: %v", err)
	}
	if m.NumPlaces() != 0 || m.NumTimed() != 1 {
		t.Fatalf("unexpected shape: %d places, %d timed", m.NumPlaces(), m.NumTimed())
	}
	// The degenerate marking must round-trip through the usual machinery.
	FireTimed(m.Timed(0), 0, m.InitialMarking())
}

// TestBuildAcceptsSelfLoops documents that self-loop arcs — an activity that
// consumes and reproduces the same tokens, or reads a place it writes — are
// deliberately NOT a build error. Gates are opaque closures, so the builder
// cannot see arc structure; the structural analyzer observes self-loops as
// zero-delta firings instead.
func TestBuildAcceptsSelfLoops(t *testing.T) {
	b := NewBuilder("selfloop")
	p := b.Place("p", 1)
	b.Timed(TimedActivity{
		Name:    "spin",
		Rate:    ConstRate(1),
		Enabled: HasTokens(p, 1),
		// Consume and reproduce: net effect zero, a pure self-loop.
		Input: Seq(Consume(p, 1), Produce(p, 1)),
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("self-loop must build: %v", err)
	}
	mk := m.InitialMarking()
	FireTimed(m.Timed(0), 0, mk)
	if mk.Tokens(p) != 1 {
		t.Fatalf("self-loop changed the marking: p=%d", mk.Tokens(p))
	}
}
