package san

import (
	"errors"
	"fmt"
	"strings"
)

// Builder assembles a Model incrementally. Submodels are composed by
// building into scoped child builders (see Scope, Rep and Join), which
// namespace place and activity names exactly like the Möbius composition
// tree namespaces replicas; places created on a parent scope and referenced
// from children act as the shared ("common") places of the Join operator.
type Builder struct {
	root   *builderState
	prefix string
}

type builderState struct {
	name     string
	model    Model
	errs     []error
	names    map[string]string // qualified name -> kind ("place", ...)
	finished bool
}

// NewBuilder returns a builder for a model with the given name.
func NewBuilder(name string) *Builder {
	st := &builderState{
		name:  name,
		names: make(map[string]string),
	}
	st.model.name = name
	st.model.placeIdx = make(map[string]PlaceID)
	st.model.extIdx = make(map[string]ExtPlaceID)
	st.model.activities = make(map[string]bool)
	return &Builder{root: st}
}

// Scope returns a child builder whose names are prefixed with name + ".".
// Scopes share the underlying model: places made in any scope are usable
// from any other, which is how shared places are expressed.
func (b *Builder) Scope(name string) *Builder {
	return &Builder{root: b.root, prefix: b.qualify(name) + "."}
}

func (b *Builder) qualify(name string) string { return b.prefix + name }

func (b *Builder) fail(format string, args ...interface{}) {
	b.root.errs = append(b.root.errs, fmt.Errorf(format, args...))
}

func (b *Builder) claim(name, kind string) bool {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		b.fail("san: invalid %s name %q", kind, name)
		return false
	}
	if prev, dup := b.root.names[name]; dup {
		b.fail("san: %s %q conflicts with existing %s", kind, name, prev)
		return false
	}
	b.root.names[name] = kind
	return true
}

// Place declares a simple place with an initial token count and returns its
// id. Declaring a duplicate name records an error surfaced by Build.
func (b *Builder) Place(name string, initial int) PlaceID {
	qn := b.qualify(name)
	if initial < 0 {
		b.fail("san: place %q has negative initial marking %d", qn, initial)
		initial = 0
	}
	if !b.claim(qn, "place") {
		// Return the existing id if the clash is with a place, so callers
		// can keep going; Build will still report the error.
		if id, ok := b.root.model.placeIdx[qn]; ok {
			return id
		}
	}
	id := PlaceID(len(b.root.model.places))
	b.root.model.places = append(b.root.model.places, placeDef{name: qn, initial: initial})
	b.root.model.placeIdx[qn] = id
	return id
}

// ExtPlace declares an extended place with initial array contents.
func (b *Builder) ExtPlace(name string, initial []int) ExtPlaceID {
	qn := b.qualify(name)
	if !b.claim(qn, "extended place") {
		if id, ok := b.root.model.extIdx[qn]; ok {
			return id
		}
	}
	id := ExtPlaceID(len(b.root.model.extPlaces))
	b.root.model.extPlaces = append(b.root.model.extPlaces,
		extPlaceDef{name: qn, initial: append([]int(nil), initial...)})
	b.root.model.extIdx[qn] = id
	return id
}

// Timed registers a timed activity. The activity's Name is qualified with
// the builder's scope.
func (b *Builder) Timed(a TimedActivity) {
	a.Name = b.qualify(a.Name)
	if !b.claim(a.Name, "timed activity") {
		return
	}
	switch {
	case a.Rate == nil && a.Delay == nil:
		b.fail("san: timed activity %q has neither rate nor delay", a.Name)
		return
	case a.Rate != nil && a.Delay != nil:
		b.fail("san: timed activity %q has both rate and delay", a.Name)
		return
	case a.Delay != nil:
		if err := ValidateDistribution(a.Delay); err != nil {
			b.fail("san: timed activity %q: %v", a.Name, err)
			return
		}
	}
	b.root.model.timed = append(b.root.model.timed, a)
	b.root.model.activities[a.Name] = true
}

// Instant registers an instantaneous activity.
func (b *Builder) Instant(a InstantActivity) {
	a.Name = b.qualify(a.Name)
	if !b.claim(a.Name, "instantaneous activity") {
		return
	}
	if a.Enabled == nil {
		b.fail("san: instantaneous activity %q has no enabling predicate", a.Name)
		return
	}
	b.root.model.instants = append(b.root.model.instants, a)
	b.root.model.activities[a.Name] = true
}

// Rep composes n replicas of a submodel, mirroring the Möbius Rep operator:
// sub is invoked once per replica with a scoped builder ("name[i]") and the
// replica index. State shared between replicas lives in places created
// outside the replica scopes.
func (b *Builder) Rep(name string, n int, sub func(rb *Builder, i int)) {
	if n <= 0 {
		b.fail("san: Rep %q with non-positive count %d", b.qualify(name), n)
		return
	}
	for i := 0; i < n; i++ {
		sub(b.Scope(fmt.Sprintf("%s[%d]", name, i)), i)
	}
}

// Join composes several named submodels, mirroring the Möbius Join operator.
// Each submodel builds into its own scope; sharing happens through places
// owned by b (or any ancestor scope).
func (b *Builder) Join(subs map[string]func(jb *Builder)) {
	// Deterministic order: sort keys.
	names := make([]string, 0, len(subs))
	for name := range subs {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		subs[name](b.Scope(name))
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Build finalises and validates the model. The builder must not be reused
// afterwards.
//
// Beyond the incremental checks recorded while building (duplicate or
// invalid names, negative initial markings, missing rates), Build probes
// every enabling predicate against the initial marking: a gate that
// references an unknown place — a stale or out-of-range PlaceID, typically
// captured from another model — is rejected here at build time instead of
// panicking deep inside a simulation run. Predicates are read-only by
// contract, so probing them is safe; effects are deliberately not probed
// (firing a disabled activity's effect may legitimately panic).
func (b *Builder) Build() (*Model, error) {
	st := b.root
	if st.finished {
		return nil, errors.New("san: Build called twice")
	}
	st.finished = true
	if len(st.errs) > 0 {
		return nil, errors.Join(st.errs...)
	}
	if len(st.model.timed)+len(st.model.instants) == 0 {
		return nil, fmt.Errorf("san: model %q has no activities", st.name)
	}
	init := st.model.InitialMarking()
	for i := range st.model.timed {
		a := &st.model.timed[i]
		if err := probePredicate("timed activity", a.Name, a.Enabled, init); err != nil {
			st.errs = append(st.errs, err)
		}
	}
	for i := range st.model.instants {
		a := &st.model.instants[i]
		if err := probePredicate("instantaneous activity", a.Name, a.Enabled, init); err != nil {
			st.errs = append(st.errs, err)
		}
	}
	if len(st.errs) > 0 {
		return nil, errors.Join(st.errs...)
	}
	return &st.model, nil
}

// probePredicate evaluates pred on mk, converting a panic (out-of-range or
// foreign place id, unguarded extended-place index) into a build error.
func probePredicate(kind, name string, pred Predicate, mk *Marking) (err error) {
	if pred == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("san: %s %q: enabling predicate failed on the initial marking (gate referencing an unknown place?): %v", kind, name, r)
		}
	}()
	pred(mk)
	return nil
}

// MustBuild is Build for static models known to be valid; it panics on error.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// --- Standard arc combinators -------------------------------------------
//
// SANs generalise arcs with gates; these helpers express the common
// plain-arc patterns as predicates/effects so models stay readable.

// HasTokens returns a predicate true when place p holds at least k tokens.
func HasTokens(p PlaceID, k int) Predicate {
	return func(m *Marking) bool { return m.Tokens(p) >= k }
}

// Consume returns an effect removing k tokens from p.
func Consume(p PlaceID, k int) Effect {
	return func(m *Marking) { m.Add(p, -k) }
}

// Produce returns an effect adding k tokens to p.
func Produce(p PlaceID, k int) Effect {
	return func(m *Marking) { m.Add(p, k) }
}

// Move returns an effect moving k tokens from src to dst.
func Move(src, dst PlaceID, k int) Effect {
	return func(m *Marking) {
		m.Add(src, -k)
		m.Add(dst, k)
	}
}

// AllOf combines predicates conjunctively.
func AllOf(ps ...Predicate) Predicate {
	return func(m *Marking) bool {
		for _, p := range ps {
			if !p(m) {
				return false
			}
		}
		return true
	}
}

// AnyOf combines predicates disjunctively.
func AnyOf(ps ...Predicate) Predicate {
	return func(m *Marking) bool {
		for _, p := range ps {
			if p(m) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(m *Marking) bool { return !p(m) }
}

// Seq combines effects sequentially.
func Seq(es ...Effect) Effect {
	return func(m *Marking) {
		for _, e := range es {
			if e != nil {
				e(m)
			}
		}
	}
}

// ConstRate returns a marking-independent rate function.
func ConstRate(r float64) RateFn {
	return func(*Marking) float64 { return r }
}

// ConstWeight returns a marking-independent case weight.
func ConstWeight(w float64) WeightFn {
	return func(*Marking) float64 { return w }
}
