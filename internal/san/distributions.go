package san

import (
	"fmt"
	"math"

	"ahs/internal/rng"
)

// Distribution is a positive firing-delay distribution for timed activities
// that are not marking-dependent exponentials. The paper's models are fully
// exponential (§4.1), but the SAN formalism — and the Möbius tool — support
// general distributions; internal/sim's GeneralRunner executes them with
// event-queue semantics.
type Distribution interface {
	// Sample draws one delay.
	Sample(r *rng.Stream) float64
	// Mean returns the expected delay.
	Mean() float64
	// String describes the distribution.
	String() string
}

// Exponential is the memoryless delay distribution with the given rate.
type Exponential struct {
	Rate float64
}

var _ Distribution = Exponential{}

// Sample implements Distribution.
func (d Exponential) Sample(r *rng.Stream) float64 { return r.Exp(d.Rate) }

// Mean implements Distribution.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// String implements Distribution.
func (d Exponential) String() string { return fmt.Sprintf("Exp(%g)", d.Rate) }

// Validate reports whether the parameters are usable.
func (d Exponential) Validate() error {
	if !(d.Rate > 0) {
		return fmt.Errorf("san: Exponential rate %v must be positive", d.Rate)
	}
	return nil
}

// Deterministic is a fixed delay.
type Deterministic struct {
	Value float64
}

var _ Distribution = Deterministic{}

// Sample implements Distribution.
func (d Deterministic) Sample(*rng.Stream) float64 { return d.Value }

// Mean implements Distribution.
func (d Deterministic) Mean() float64 { return d.Value }

// String implements Distribution.
func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// Validate reports whether the parameters are usable.
func (d Deterministic) Validate() error {
	if !(d.Value > 0) {
		return fmt.Errorf("san: Deterministic delay %v must be positive", d.Value)
	}
	return nil
}

// Uniform is a delay uniform on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Distribution = Uniform{}

// Sample implements Distribution.
func (d Uniform) Sample(r *rng.Stream) float64 { return r.Uniform(d.Lo, d.Hi) }

// Mean implements Distribution.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// String implements Distribution.
func (d Uniform) String() string { return fmt.Sprintf("U(%g,%g)", d.Lo, d.Hi) }

// Validate reports whether the parameters are usable.
func (d Uniform) Validate() error {
	if !(d.Lo >= 0) || !(d.Hi > d.Lo) {
		return fmt.Errorf("san: Uniform bounds [%v,%v) invalid", d.Lo, d.Hi)
	}
	return nil
}

// Erlang is the sum of K independent Exp(Rate) stages — the classic
// "nearly deterministic with tunable variance" delay.
type Erlang struct {
	K    int
	Rate float64
}

var _ Distribution = Erlang{}

// Sample implements Distribution.
func (d Erlang) Sample(r *rng.Stream) float64 {
	total := 0.0
	for i := 0; i < d.K; i++ {
		total += r.Exp(d.Rate)
	}
	return total
}

// Mean implements Distribution.
func (d Erlang) Mean() float64 { return float64(d.K) / d.Rate }

// String implements Distribution.
func (d Erlang) String() string { return fmt.Sprintf("Erlang(%d,%g)", d.K, d.Rate) }

// Validate reports whether the parameters are usable.
func (d Erlang) Validate() error {
	if d.K < 1 {
		return fmt.Errorf("san: Erlang needs K >= 1 stages, got %d", d.K)
	}
	if !(d.Rate > 0) {
		return fmt.Errorf("san: Erlang rate %v must be positive", d.Rate)
	}
	return nil
}

// Weibull is the Weibull delay with the given shape and scale, sampled by
// inversion: scale·(-ln U)^(1/shape).
type Weibull struct {
	Shape, Scale float64
}

var _ Distribution = Weibull{}

// Sample implements Distribution.
func (d Weibull) Sample(r *rng.Stream) float64 {
	return d.Scale * math.Pow(-math.Log(r.Float64Open()), 1/d.Shape)
}

// Mean implements Distribution.
func (d Weibull) Mean() float64 {
	return d.Scale * math.Gamma(1+1/d.Shape)
}

// String implements Distribution.
func (d Weibull) String() string { return fmt.Sprintf("Weibull(%g,%g)", d.Shape, d.Scale) }

// Validate reports whether the parameters are usable.
func (d Weibull) Validate() error {
	if !(d.Shape > 0) || !(d.Scale > 0) {
		return fmt.Errorf("san: Weibull shape/scale (%v,%v) must be positive", d.Shape, d.Scale)
	}
	return nil
}

// ValidateDistribution checks the parameters of the built-in distributions;
// unknown implementations are accepted as-is.
func ValidateDistribution(d Distribution) error {
	type validator interface{ Validate() error }
	if v, ok := d.(validator); ok {
		return v.Validate()
	}
	return nil
}
