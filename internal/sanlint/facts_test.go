package sanlint

import (
	"strings"
	"testing"

	"ahs/internal/san"
	"ahs/internal/structural"
)

// factsFor computes exhaustive structural facts for a test model.
func factsFor(t *testing.T, m *san.Model) *structural.ModelFacts {
	t.Helper()
	f, err := structural.Analyze(m, structural.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !f.Exhaustive {
		t.Fatal("test model facts must be exhaustive")
	}
	return f
}

func TestFactsCrossValidationClean(t *testing.T) {
	m := cleanModel(t)
	rep, err := Run(m, Config{Facts: factsFor(t, m)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("self-consistent facts must lint clean, got:\n%s", rep.Text())
	}
}

func TestFactsForWrongModelRejected(t *testing.T) {
	facts := factsFor(t, cleanModel(t))
	b := san.NewBuilder("other")
	p := b.Place("p", 1)
	b.Timed(san.TimedActivity{
		Name: "t", Enabled: san.HasTokens(p, 1),
		Rate: san.ConstRate(1), Input: san.Consume(p, 1),
	})
	if _, err := Run(mustBuild(t, b), Config{Facts: facts}); err == nil {
		t.Fatal("facts for a different model must be a configuration error")
	}
}

func TestBoundViolationSAN012(t *testing.T) {
	m := cleanModel(t)
	facts := factsFor(t, m)
	// Forge a tighter bound than reality: ping reaches 1, claim 0.
	for i := range facts.Places {
		if facts.Places[i].Name == "ping" {
			facts.Places[i].CertifiedBound = 0
		}
	}
	rep, err := Run(m, Config{Facts: facts})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Check == CheckBoundViolation && d.Object == "ping" {
			found = true
			if d.Marking == "" {
				t.Error("SAN012 must carry a witness marking")
			}
		}
	}
	if !found {
		t.Fatalf("want SAN012 for ping, got:\n%s", rep.Text())
	}
}

func TestNonConservativeSAN013(t *testing.T) {
	// A model that strictly grows: gen produces tokens without consuming.
	b := san.NewBuilder("growing")
	p := b.Place("p", 0)
	cap_ := b.Place("cap", 3)
	b.Timed(san.TimedActivity{
		Name: "gen", Enabled: san.HasTokens(cap_, 1),
		Rate: san.ConstRate(1), Input: san.Seq(san.Consume(cap_, 1), san.Produce(p, 2)),
	})
	m := mustBuild(t, b)
	facts := factsFor(t, m)
	// Forge an invariant the model does not satisfy: p + cap constant.
	facts.Invariants = append(facts.Invariants, structural.Invariant{
		Terms: []structural.Term{{Place: "p", Coeff: 1}, {Place: "cap", Coeff: 1}},
		Value: 3,
	})
	rep, err := Run(m, Config{Facts: facts, Observed: []string{"p"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Check == CheckNonConservative {
			found = true
			if !strings.Contains(d.Object, "p") || d.Marking == "" {
				t.Errorf("SAN013 diagnostic incomplete: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("want SAN013, got:\n%s", rep.Text())
	}
}

func TestGenuineInvariantsPassSAN013(t *testing.T) {
	// The real facts of the growing model contain genuine invariants
	// (e.g. 2*cap + p = 6); they must hold during exploration.
	b := san.NewBuilder("growing2")
	p := b.Place("p", 0)
	cap_ := b.Place("cap", 3)
	b.Timed(san.TimedActivity{
		Name: "gen", Enabled: san.HasTokens(cap_, 1),
		Rate: san.ConstRate(1), Input: san.Seq(san.Consume(cap_, 1), san.Produce(p, 2)),
	})
	m := mustBuild(t, b)
	facts := factsFor(t, m)
	if len(facts.Invariants) == 0 {
		t.Fatal("expected at least one genuine invariant (2*cap + p)")
	}
	rep, err := Run(m, Config{Facts: facts, Observed: []string{"p"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diagnostics {
		if d.Check == CheckNonConservative || d.Check == CheckBoundViolation {
			t.Errorf("genuine facts must not fire %s: %s", d.Check, d)
		}
	}
}

func TestStiffnessSAN014(t *testing.T) {
	b := san.NewBuilder("stiff")
	a := b.Place("a", 1)
	bb := b.Place("b", 0)
	b.Timed(san.TimedActivity{
		Name: "slow", Enabled: san.HasTokens(a, 1),
		Rate: san.ConstRate(1e-6), Input: san.Move(a, bb, 1),
	})
	b.Timed(san.TimedActivity{
		Name: "fast", Enabled: san.HasTokens(bb, 1),
		Rate: san.ConstRate(10), Input: san.Move(bb, a, 1),
	})
	m := mustBuild(t, b)
	facts := factsFor(t, m)
	if !facts.Stiffness.Flagged {
		t.Fatalf("spread %v must be flagged", facts.Stiffness.Spread)
	}

	rep, err := Run(m, Config{Facts: facts})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Check == CheckStiffness {
			found = true
			if d.Severity != SeverityWarning {
				t.Errorf("SAN014 severity = %v, want warning", d.Severity)
			}
			if !strings.Contains(d.Message, "slow") || !strings.Contains(d.Message, "fast") {
				t.Errorf("SAN014 message should name both extreme activities: %s", d.Message)
			}
		}
	}
	if !found {
		t.Fatalf("want SAN014, got:\n%s", rep.Text())
	}

	// A raised threshold silences it.
	rep, err = Run(m, Config{Facts: facts, StiffnessThreshold: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diagnostics {
		if d.Check == CheckStiffness {
			t.Errorf("SAN014 must respect StiffnessThreshold: %s", d)
		}
	}
}

func TestWithoutFactsNoFactsChecks(t *testing.T) {
	// The facts-driven checks must not fire on a default config, keeping
	// the existing pinned-clean behaviour of the paper models intact.
	rep, err := Run(cleanModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diagnostics {
		switch d.Check {
		case CheckBoundViolation, CheckNonConservative, CheckStiffness:
			t.Errorf("facts check %s fired without Config.Facts: %s", d.Check, d)
		}
	}
}

func TestTruncatedFactsCertifyNothing(t *testing.T) {
	m := cleanModel(t)
	facts, err := structural.Analyze(m, structural.Options{MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if facts.Exhaustive {
		t.Fatal("facts should be truncated")
	}
	// Truncated facts must not produce SAN012/SAN013 even though the
	// linter's own walk visits states the facts walk never saw.
	rep, err := Run(m, Config{Facts: facts})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diagnostics {
		if d.Check == CheckBoundViolation || d.Check == CheckNonConservative {
			t.Errorf("truncated facts fired %s: %s", d.Check, d)
		}
	}
}

// TestTruncationSummaryNamesSuppressedChecks pins the SAN010 message
// listing the suppressed check IDs, so operators can see which checks were
// cut off.
func TestTruncationSummaryNamesSuppressedChecks(t *testing.T) {
	rep, err := Run(cleanModel(t), Config{MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("MaxStates=1 must truncate")
	}
	var msg string
	for _, d := range rep.Diagnostics {
		if d.Check == CheckTruncated {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("want SAN010, got:\n%s", rep.Text())
	}
	for _, id := range []CheckID{CheckDeadPlace, CheckStuckPlace, CheckNeverEnabled, CheckGoalUnreachable} {
		if !strings.Contains(msg, string(id)) {
			t.Errorf("SAN010 message %q does not name suppressed check %s", msg, id)
		}
	}
}
