package sanlint

import (
	"encoding/json"
	"strings"
	"testing"

	"ahs/internal/san"
)

// mustBuild builds a test model, failing the test on builder errors.
func mustBuild(t *testing.T, b *san.Builder) *san.Model {
	t.Helper()
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// cleanModel is a two-place ping-pong: every place is read and written,
// both activities enable, nothing is probabilistic.
func cleanModel(t *testing.T) *san.Model {
	b := san.NewBuilder("clean")
	ping := b.Place("ping", 1)
	pong := b.Place("pong", 0)
	b.Timed(san.TimedActivity{
		Name: "go", Enabled: san.HasTokens(ping, 1),
		Rate: san.ConstRate(1), Input: san.Move(ping, pong, 1),
	})
	b.Timed(san.TimedActivity{
		Name: "back", Enabled: san.HasTokens(pong, 1),
		Rate: san.ConstRate(2), Input: san.Move(pong, ping, 1),
	})
	return mustBuild(t, b)
}

func TestCleanModelHasNoFindings(t *testing.T) {
	rep, err := Run(cleanModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("expected clean report, got:\n%s", rep.Text())
	}
	if rep.States != 2 {
		t.Fatalf("expected 2 states, got %d", rep.States)
	}
}

// TestBrokenModels feeds deliberately malformed models to the linter and
// asserts the advertised check ID fires for each distinct defect class.
func TestBrokenModels(t *testing.T) {
	tests := []struct {
		name  string
		check CheckID
		cfg   Config
		build func(t *testing.T) *san.Model
	}{
		{
			name:  "negative case weight",
			check: CheckCaseWeights,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("bad-weight")
				p := b.Place("p", 1)
				b.Timed(san.TimedActivity{
					Name: "t", Enabled: san.HasTokens(p, 1), Rate: san.ConstRate(1),
					Cases: []san.Case{{Weight: san.ConstWeight(-0.5)}, {}},
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "constant weights not normalized",
			check: CheckWeightNormalization,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("unnormalized")
				p := b.Place("p", 1)
				b.Timed(san.TimedActivity{
					Name: "t", Enabled: san.HasTokens(p, 1), Rate: san.ConstRate(1),
					Cases: []san.Case{
						{Weight: san.ConstWeight(0.3)},
						{Weight: san.ConstWeight(0.5)},
					},
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "dead place",
			check: CheckDeadPlace,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("dead-place")
				p := b.Place("p", 1)
				b.Place("unused", 0)
				b.Timed(san.TimedActivity{
					Name: "t", Enabled: san.HasTokens(p, 1),
					Rate: san.ConstRate(1), Input: san.Consume(p, 1),
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "stuck-at-initial place",
			check: CheckStuckPlace,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("stuck-place")
				p := b.Place("p", 1)
				gate := b.Place("gate", 1) // read by the predicate, never written
				b.Timed(san.TimedActivity{
					Name: "t", Enabled: san.AllOf(san.HasTokens(p, 1), san.HasTokens(gate, 1)),
					Rate: san.ConstRate(1), Input: san.Consume(p, 1),
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "never-enabled activity",
			check: CheckNeverEnabled,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("never-enabled")
				p := b.Place("p", 1)
				b.Timed(san.TimedActivity{
					Name: "live", Enabled: san.HasTokens(p, 1),
					Rate: san.ConstRate(1), Input: san.Seq(san.Consume(p, 1), san.Produce(p, 1)),
				})
				b.Timed(san.TimedActivity{
					Name: "impossible", Enabled: san.HasTokens(p, 5), // p never exceeds 1
					Rate: san.ConstRate(1),
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "instantaneous conflict",
			check: CheckInstantConflict,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("instant-conflict")
				trigger := b.Place("trigger", 0)
				src := b.Place("src", 1)
				b.Timed(san.TimedActivity{
					Name: "arm", Enabled: san.HasTokens(src, 1),
					Rate: san.ConstRate(1), Input: san.Move(src, trigger, 1),
				})
				for _, name := range []string{"left", "right"} {
					b.Instant(san.InstantActivity{
						Name: name, Priority: 1,
						Enabled: san.HasTokens(trigger, 1),
						Input:   san.Consume(trigger, 1),
					})
				}
				return mustBuild(t, b)
			},
		},
		{
			name:  "unreachable goal",
			check: CheckGoalUnreachable,
			cfg:   Config{Goals: []string{"KO_total"}},
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("unreachable-goal")
				p := b.Place("p", 1)
				b.Place("KO_total", 0) // nothing ever marks it
				b.Timed(san.TimedActivity{
					Name: "t", Enabled: san.HasTokens(p, 1),
					Rate: san.ConstRate(1), Input: san.Seq(san.Consume(p, 1), san.Produce(p, 1)),
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "effect panics on reachable marking",
			check: CheckPanic,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("panicking-effect")
				p := b.Place("p", 1)
				// Unguarded consume: fires again at p=0 and drives the
				// marking negative.
				b.Timed(san.TimedActivity{
					Name: "drain", Rate: san.ConstRate(1), Input: san.Consume(p, 1),
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "extended-place index out of range",
			check: CheckPanic,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("ext-index")
				queue := b.ExtPlace("queue", []int{7})
				p := b.Place("p", 1)
				b.Timed(san.TimedActivity{
					Name: "pop2", Enabled: san.HasTokens(p, 1), Rate: san.ConstRate(1),
					Input: func(mk *san.Marking) {
						mk.ExtRemoveAt(queue, 1) // queue only ever holds one element
					},
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "invalid rate while enabled",
			check: CheckInvalidRate,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("zero-rate")
				p := b.Place("p", 1)
				b.Timed(san.TimedActivity{
					Name: "t", Enabled: san.HasTokens(p, 1),
					Rate: func(*san.Marking) float64 { return 0 },
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "instantaneous livelock",
			check: CheckInstantLivelock,
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("livelock")
				p := b.Place("p", 1)
				b.Instant(san.InstantActivity{
					Name: "spin", Enabled: san.HasTokens(p, 1), // never disables itself
				})
				return mustBuild(t, b)
			},
		},
		{
			name:  "truncated exploration",
			check: CheckTruncated,
			cfg:   Config{MaxStates: 10},
			build: func(t *testing.T) *san.Model {
				b := san.NewBuilder("unbounded")
				p := b.Place("counter", 0)
				b.Timed(san.TimedActivity{
					Name: "count", Rate: san.ConstRate(1), Input: san.Produce(p, 1),
				})
				return mustBuild(t, b)
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rep, err := Run(tt.build(t), tt.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !hasCheck(rep, tt.check) {
				t.Fatalf("expected %s to fire, got:\n%s", tt.check, rep.Text())
			}
		})
	}
}

func hasCheck(r *Report, id CheckID) bool {
	for _, d := range r.Diagnostics {
		if d.Check == id {
			return true
		}
	}
	return false
}

func TestObservedSuppressesDeadPlace(t *testing.T) {
	b := san.NewBuilder("counter")
	p := b.Place("p", 1)
	c := b.Place("events", 0)
	b.Timed(san.TimedActivity{
		Name: "t", Enabled: san.HasTokens(p, 1), Rate: san.ConstRate(1),
		// SetTokens-only update: the counter is written, never read.
		Input: func(mk *san.Marking) { mk.SetTokens(c, 1) },
	})
	m := mustBuild(t, b)

	rep, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCheck(rep, CheckDeadPlace) {
		t.Fatalf("expected SAN003 for write-only counter, got:\n%s", rep.Text())
	}
	rep, err = Run(m, Config{Observed: []string{"events"}})
	if err != nil {
		t.Fatal(err)
	}
	if hasCheck(rep, CheckDeadPlace) {
		t.Fatalf("Observed should suppress SAN003, got:\n%s", rep.Text())
	}
}

func TestGoalReachableIsClean(t *testing.T) {
	b := san.NewBuilder("goal-ok")
	p := b.Place("p", 1)
	goal := b.Place("goal", 0)
	b.Timed(san.TimedActivity{
		Name: "t", Enabled: san.HasTokens(p, 1),
		Rate: san.ConstRate(1), Input: san.Move(p, goal, 1),
	})
	rep, err := Run(mustBuild(t, b), Config{Goals: []string{"goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if hasCheck(rep, CheckGoalUnreachable) {
		t.Fatalf("goal is reachable, got:\n%s", rep.Text())
	}
}

func TestUnknownConfigNamesRejected(t *testing.T) {
	m := cleanModel(t)
	if _, err := Run(m, Config{Observed: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown observed place")
	}
	if _, err := Run(m, Config{Goals: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown goal place")
	}
}

func TestReportJSONAndText(t *testing.T) {
	b := san.NewBuilder("fmt")
	p := b.Place("p", 1)
	b.Place("unused", 0)
	b.Timed(san.TimedActivity{
		Name: "t", Enabled: san.HasTokens(p, 1),
		Rate: san.ConstRate(1), Input: san.Consume(p, 1),
	})
	rep, err := Run(mustBuild(t, b), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Warnings() == 0 {
		t.Fatalf("expected warnings, got:\n%s", rep.Text())
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"severity": "warning"`) && !strings.Contains(string(raw), `"severity":"warning"`) {
		t.Fatalf("severity should marshal as a string, got %s", raw)
	}
	if !strings.Contains(rep.Text(), "SAN003") {
		t.Fatalf("text should carry check IDs, got:\n%s", rep.Text())
	}
}

func TestCatalogCoversAllDiagnosedChecks(t *testing.T) {
	ids := make(map[CheckID]bool)
	for _, c := range Catalog() {
		ids[c.ID] = true
	}
	for _, want := range []CheckID{
		CheckCaseWeights, CheckWeightNormalization, CheckDeadPlace, CheckStuckPlace,
		CheckNeverEnabled, CheckInstantConflict, CheckGoalUnreachable, CheckPanic,
		CheckInvalidRate, CheckTruncated, CheckInstantLivelock,
	} {
		if !ids[want] {
			t.Errorf("catalogue missing %s", want)
		}
	}
}
