package sanlint

import (
	"fmt"
	"math"
	"strings"

	"ahs/internal/san"
	"ahs/internal/structural"
)

// This file implements the facts-driven cross-checks SAN012–SAN014: they
// assert a structural.ModelFacts artifact against the linter's own bounded
// exploration. They are opt-in (Config.Facts) because they only make sense
// when the caller has facts for exactly the graph being explored.

// resolvedFacts is Config.Facts compiled onto the model's place ids for
// per-marking evaluation.
type resolvedFacts struct {
	facts *structural.ModelFacts

	// Certified token bounds by id; -1 entries are uncovered.
	boundP []int
	boundE []int

	invariants []resolvedInvariant
}

type resolvedInvariant struct {
	label  string
	value  int
	places []weightedPlace
	exts   []weightedExt
}

type weightedPlace struct {
	id    san.PlaceID
	coeff int
}

type weightedExt struct {
	id    san.ExtPlaceID
	coeff int
}

// extLenName converts a "len(x)" pseudo-place name back to the extended
// place name, reporting whether it had that form.
func extLenName(name string) (string, bool) {
	if strings.HasPrefix(name, "len(") && strings.HasSuffix(name, ")") {
		return name[4 : len(name)-1], true
	}
	return "", false
}

// resolveFacts compiles the certified parts of the facts onto model ids.
// Facts from a truncated walk certify nothing, so everything per-marking
// stays empty then (SAN014 still applies: stiffness is observational).
func resolveFacts(model *san.Model, facts *structural.ModelFacts) *resolvedFacts {
	rf := &resolvedFacts{
		facts:  facts,
		boundP: make([]int, model.NumPlaces()),
		boundE: make([]int, model.NumExtPlaces()),
	}
	for i := range rf.boundP {
		rf.boundP[i] = -1
	}
	for i := range rf.boundE {
		rf.boundE[i] = -1
	}
	if !facts.Exhaustive {
		return rf
	}
	for _, pf := range facts.Places {
		if pf.CertifiedBound < 0 {
			continue
		}
		if ext, ok := extLenName(pf.Name); ok {
			if id, found := model.ExtPlaceByName(ext); found {
				rf.boundE[id] = pf.CertifiedBound
			}
			continue
		}
		if id, found := model.PlaceByName(pf.Name); found {
			rf.boundP[id] = pf.CertifiedBound
		}
	}
	for _, inv := range facts.Invariants {
		ri := resolvedInvariant{value: inv.Value}
		var labels []string
		ok := true
		for _, term := range inv.Terms {
			labels = append(labels, fmt.Sprintf("%d*%s", term.Coeff, term.Place))
			if ext, found := extLenName(term.Place); found {
				id, exists := model.ExtPlaceByName(ext)
				if !exists {
					ok = false
					break
				}
				ri.exts = append(ri.exts, weightedExt{id: id, coeff: term.Coeff})
				continue
			}
			id, exists := model.PlaceByName(term.Place)
			if !exists {
				ok = false
				break
			}
			ri.places = append(ri.places, weightedPlace{id: id, coeff: term.Coeff})
		}
		if ok {
			ri.label = strings.Join(labels, " + ")
			rf.invariants = append(rf.invariants, ri)
		}
	}
	return rf
}

// factsChecks asserts the certified bounds (SAN012) and conservation
// invariants (SAN013) on one freshly interned stable marking. Callers hold
// the marking quiet (observer detached).
func (l *linter) factsChecks(mk *san.Marking) {
	rf := l.facts
	if rf == nil {
		return
	}
	for p, bound := range rf.boundP {
		if bound < 0 {
			continue
		}
		if got := mk.Tokens(san.PlaceID(p)); got > bound {
			l.diag(CheckBoundViolation, SeverityError, l.model.PlaceName(san.PlaceID(p)), mk.Summary(),
				"place holds %d tokens, exceeding the certified bound %d from the structural facts", got, bound)
		}
	}
	for p, bound := range rf.boundE {
		if bound < 0 {
			continue
		}
		if got := mk.ExtLen(san.ExtPlaceID(p)); got > bound {
			l.diag(CheckBoundViolation, SeverityError, l.model.ExtPlaceName(san.ExtPlaceID(p)), mk.Summary(),
				"extended place holds %d entries, exceeding the certified length bound %d from the structural facts", got, bound)
		}
	}
	for i := range rf.invariants {
		inv := &rf.invariants[i]
		total := 0
		for _, wp := range inv.places {
			total += wp.coeff * mk.Tokens(wp.id)
		}
		for _, we := range inv.exts {
			total += we.coeff * mk.ExtLen(we.id)
		}
		if total != inv.value {
			l.diag(CheckNonConservative, SeverityError, inv.label, mk.Summary(),
				"conservation invariant evaluates to %d, want %d; the model is not conservative under the certified P-semiflow", total, inv.value)
		}
	}
}

// stiffnessCheck applies SAN014 from the facts' stiffness report.
func (l *linter) stiffnessCheck() {
	if l.facts == nil {
		return
	}
	s := l.facts.facts.Stiffness
	threshold := l.cfg.StiffnessThreshold
	if threshold <= 0 {
		threshold = 1e6
	}
	if s.Spread > threshold && !math.IsInf(s.Spread, 0) {
		l.diag(CheckStiffness, SeverityWarning, "", "",
			"exponential rates span %.3g/h (%q) to %.3g/h (%q): spread %.3g exceeds the %.3g threshold; uniformization and naive Monte Carlo both degrade — prefer importance sampling or lumping",
			s.MinRate, s.MinActivity, s.MaxRate, s.MaxActivity, s.Spread, threshold)
	}
}
