// Package sanlint statically verifies the structure of a built san.Model
// without spending any simulation budget on it.
//
// The paper's headline measure S(t) is only meaningful when the SAN
// composition is well-formed: case probabilities that normalise, gates that
// touch only live places, an absorbing KO_total that is actually reachable.
// A malformed model built through san.Builder otherwise fails — or worse,
// silently biases the estimate — deep inside a Monte-Carlo run. Following
// the "check the model before simulating it" discipline of simulation-based
// safety assessment, this package explores a bounded marking graph of the
// model (the same reachability machinery as internal/ctmc, see
// ctmc.MarkingKey) while tracing every place access through
// san.AccessObserver, and reports findings as stable, documented check IDs
// (SAN001, SAN002, ...). See docs/linting.md for the full catalogue.
package sanlint

import (
	"fmt"
	"sort"
	"strings"

	"ahs/internal/san"
	"ahs/internal/structural"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String returns "info", "warning" or "error".
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity?(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// CheckID identifies one lint check. IDs are stable across releases: tools
// may filter or suppress on them.
type CheckID string

// The check catalogue. docs/linting.md documents each with an example.
const (
	// CheckCaseWeights: an activity's case weights are invalid (negative,
	// NaN, or summing to zero) in some reachable marking.
	CheckCaseWeights CheckID = "SAN001"
	// CheckWeightNormalization: an activity's case weights are constant
	// across every observed marking but do not sum to 1.
	CheckWeightNormalization CheckID = "SAN002"
	// CheckDeadPlace: a place is never read by any predicate, rate, weight
	// or effect (and is not a declared observable).
	CheckDeadPlace CheckID = "SAN003"
	// CheckStuckPlace: a place is never written by any effect — it can
	// never leave its initial marking.
	CheckStuckPlace CheckID = "SAN004"
	// CheckNeverEnabled: an activity is enabled in no reachable marking.
	CheckNeverEnabled CheckID = "SAN005"
	// CheckInstantConflict: two instantaneous activities with equal
	// priority are enabled in the same reachable marking (nondeterminism).
	CheckInstantConflict CheckID = "SAN006"
	// CheckGoalUnreachable: a declared goal place (e.g. the absorbing
	// KO_total) is marked in no reachable marking.
	CheckGoalUnreachable CheckID = "SAN007"
	// CheckPanic: a marking function panicked during exploration —
	// typically an extended-place index out of range or a negative marking.
	CheckPanic CheckID = "SAN008"
	// CheckInvalidRate: a timed activity is enabled with a non-positive,
	// NaN or infinite rate.
	CheckInvalidRate CheckID = "SAN009"
	// CheckTruncated: exploration hit MaxStates; absence-based checks
	// (SAN003, SAN004, SAN005, SAN007) were suppressed.
	CheckTruncated CheckID = "SAN010"
	// CheckInstantLivelock: the instantaneous closure exceeded
	// MaxInstantDepth — instantaneous activities likely re-enable forever.
	CheckInstantLivelock CheckID = "SAN011"
	// CheckBoundViolation: a reachable marking exceeds a token bound
	// certified by the structural analyzer (Config.Facts) — the facts and
	// the explorer disagree, so one of them is wrong.
	CheckBoundViolation CheckID = "SAN012"
	// CheckNonConservative: a reachable marking violates a conservation
	// invariant (P-semiflow) certified by the structural analyzer.
	CheckNonConservative CheckID = "SAN013"
	// CheckStiffness: the spread between the fastest and slowest observed
	// exponential rates exceeds the stiffness threshold; both uniformization
	// and naive Monte Carlo degrade on such models.
	CheckStiffness CheckID = "SAN014"
)

// CheckInfo describes one catalogue entry.
type CheckInfo struct {
	ID       CheckID
	Severity Severity
	Title    string
}

// Catalog lists every check in ID order.
func Catalog() []CheckInfo {
	return []CheckInfo{
		{CheckCaseWeights, SeverityError, "invalid case weights in a reachable marking"},
		{CheckWeightNormalization, SeverityWarning, "constant case weights do not sum to 1"},
		{CheckDeadPlace, SeverityWarning, "place never read by any gate, rate or weight"},
		{CheckStuckPlace, SeverityWarning, "place never written by any effect"},
		{CheckNeverEnabled, SeverityWarning, "activity enabled in no reachable marking"},
		{CheckInstantConflict, SeverityError, "equal-priority instantaneous activities enabled together"},
		{CheckGoalUnreachable, SeverityError, "goal place unreachable"},
		{CheckPanic, SeverityError, "marking function panicked during exploration"},
		{CheckInvalidRate, SeverityError, "invalid rate while enabled"},
		{CheckTruncated, SeverityWarning, "exploration truncated at MaxStates"},
		{CheckInstantLivelock, SeverityError, "instantaneous-activity livelock"},
		{CheckBoundViolation, SeverityError, "reachable marking exceeds a certified token bound"},
		{CheckNonConservative, SeverityError, "reachable marking violates a certified conservation invariant"},
		{CheckStiffness, SeverityWarning, "exponential rate spread exceeds the stiffness threshold"},
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Check is the stable check ID (e.g. "SAN003").
	Check CheckID `json:"check"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Object names the offending place or activity, when there is one.
	Object string `json:"object,omitempty"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Marking is a compact witness marking, when the finding has one.
	Marking string `json:"marking,omitempty"`
}

// String renders the diagnostic in a grep-friendly single line.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s:", d.Check, d.Severity)
	if d.Object != "" {
		fmt.Fprintf(&b, " %s:", d.Object)
	}
	b.WriteByte(' ')
	b.WriteString(d.Message)
	if d.Marking != "" {
		fmt.Fprintf(&b, " [witness %s]", d.Marking)
	}
	return b.String()
}

// Config tunes a lint run.
type Config struct {
	// MaxStates bounds the explored stable markings; 0 means 20000. When
	// the bound is hit the report is marked Truncated and absence-based
	// checks are suppressed (SAN010).
	MaxStates int
	// MaxInstantDepth bounds the instantaneous closure; 0 means 1000.
	MaxInstantDepth int
	// Observed lists places that are read only by external measures (not
	// by the model itself) and are therefore exempt from the dead-place
	// check, e.g. cumulative outcome counters.
	Observed []string
	// Goals lists places that must become marked in some reachable marking
	// (SAN007). Markings with a marked goal place are treated as absorbing,
	// exactly like ExploreOptions.Absorb in the exact CTMC solver.
	Goals []string
	// Facts, when set, enables the facts-driven cross-checks SAN012–SAN014
	// against a structural.ModelFacts artifact for the same model. Certified
	// bounds and invariants (Facts.Exhaustive) are asserted on every
	// explored marking; a violation means the structural analyzer and the
	// explorer disagree about the model. The facts should have been
	// computed with an absorption matching Goals — a facts walk absorbed
	// earlier than this exploration can legitimately disagree.
	Facts *structural.ModelFacts
	// StiffnessThreshold overrides the SAN014 rate-spread threshold;
	// 0 means 1e6. Only consulted when Facts is set.
	StiffnessThreshold float64
}

// Report is the outcome of linting one model.
type Report struct {
	// Model is the linted model's name.
	Model string `json:"model"`
	// States is the number of stable markings explored.
	States int `json:"states"`
	// Truncated reports whether exploration hit MaxStates.
	Truncated bool `json:"truncated"`
	// Diagnostics holds the findings, errors first.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Errors returns the number of error-severity findings.
func (r *Report) Errors() int { return r.countAtLeast(SeverityError) }

// Warnings returns the number of warning-severity findings.
func (r *Report) Warnings() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityWarning {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-severity finding was made.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// Clean reports whether the run produced no findings at all.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

func (r *Report) countAtLeast(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity >= s {
			n++
		}
	}
	return n
}

// Text renders the report for terminals: a header line and one line per
// finding.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d states explored", r.Model, r.States)
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	if r.Clean() {
		b.WriteString(": ok\n")
		return b.String()
	}
	fmt.Fprintf(&b, ": %d finding(s)\n", len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// sortDiagnostics orders findings errors-first, then by check, object and
// message, giving deterministic output.
func (r *Report) sortDiagnostics() {
	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Message < b.Message
	})
}

// Run lints the model: it explores the bounded marking graph from the
// initial marking, tracing place accesses and validating weights and rates
// along the way, then applies the whole-model absence checks. The returned
// error reports misuse of the configuration (an unknown place name), never
// a model defect — defects are Diagnostics.
func Run(model *san.Model, cfg Config) (*Report, error) {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 20_000
	}
	if cfg.MaxInstantDepth <= 0 {
		cfg.MaxInstantDepth = 1000
	}
	l := &linter{
		model:  model,
		cfg:    cfg,
		report: &Report{Model: model.Name()},
		seen:   make(map[string]struct{}),
		dedup:  make(map[string]struct{}),
		rec:    newRecorder(model),
		weight: make(map[string]*weightRecord),
	}
	observed := make(map[san.PlaceID]bool)
	for _, name := range cfg.Observed {
		id, ok := model.PlaceByName(name)
		if !ok {
			return nil, fmt.Errorf("sanlint: observed place %q not in model %q", name, model.Name())
		}
		observed[id] = true
	}
	for _, name := range cfg.Goals {
		id, ok := model.PlaceByName(name)
		if !ok {
			return nil, fmt.Errorf("sanlint: goal place %q not in model %q", name, model.Name())
		}
		l.goals = append(l.goals, id)
	}
	l.goalReached = make([]bool, len(l.goals))
	l.observed = observed
	if cfg.Facts != nil {
		if cfg.Facts.Model != model.Name() {
			return nil, fmt.Errorf("sanlint: facts are for model %q, linting %q", cfg.Facts.Model, model.Name())
		}
		l.facts = resolveFacts(model, cfg.Facts)
	}

	l.explore()
	l.absenceChecks()
	l.stiffnessCheck()
	l.normalizationChecks()
	l.report.States = len(l.seen)
	l.report.sortDiagnostics()
	return l.report, nil
}
