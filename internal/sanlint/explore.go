package sanlint

import (
	"fmt"
	"math"

	"ahs/internal/ctmc"
	"ahs/internal/san"
)

// recorder accumulates which places the model's own functions read and
// write, via san.AccessObserver. Key computation and goal checks detach the
// observer first, so only predicate/rate/weight/effect accesses count.
type recorder struct {
	readP, writeP []bool
	readE, writeE []bool
}

func newRecorder(m *san.Model) *recorder {
	return &recorder{
		readP:  make([]bool, m.NumPlaces()),
		writeP: make([]bool, m.NumPlaces()),
		readE:  make([]bool, m.NumExtPlaces()),
		writeE: make([]bool, m.NumExtPlaces()),
	}
}

func (r *recorder) ReadPlace(p san.PlaceID)        { r.readP[p] = true }
func (r *recorder) WritePlace(p san.PlaceID)       { r.writeP[p] = true }
func (r *recorder) ReadExtPlace(p san.ExtPlaceID)  { r.readE[p] = true }
func (r *recorder) WriteExtPlace(p san.ExtPlaceID) { r.writeE[p] = true }

// weightRecord tracks the case-weight vectors observed for one activity, to
// decide whether the weights are (observably) constant.
type weightRecord struct {
	first  []float64
	varies bool
	evals  int
}

type linter struct {
	model  *san.Model
	cfg    Config
	report *Report

	rec      *recorder
	observed map[san.PlaceID]bool

	goals       []san.PlaceID
	goalReached []bool

	seen  map[string]struct{}
	queue []*san.Marking
	dedup map[string]struct{}

	enabledTimed   []bool
	enabledInstant []bool

	weight map[string]*weightRecord

	facts *resolvedFacts
}

// diag records a finding once per (check, object) pair.
func (l *linter) diag(check CheckID, sev Severity, object, marking, format string, args ...interface{}) {
	key := string(check) + "|" + object
	if _, dup := l.dedup[key]; dup {
		return
	}
	l.dedup[key] = struct{}{}
	l.report.Diagnostics = append(l.report.Diagnostics, Diagnostic{
		Check:    check,
		Severity: sev,
		Object:   object,
		Message:  fmt.Sprintf(format, args...),
		Marking:  marking,
	})
}

// quiet runs fn on mk with the access observer detached, so bookkeeping
// reads (interning keys, goal checks, witness summaries) do not count as
// model accesses.
func (l *linter) quiet(mk *san.Marking, fn func()) {
	mk.SetObserver(nil)
	fn()
	mk.SetObserver(l.rec)
}

// intern registers a stable marking, returning whether it was new and
// whether it is absorbing (a goal place is marked).
func (l *linter) intern(mk *san.Marking) (fresh, absorbing bool) {
	var key string
	l.quiet(mk, func() {
		key = ctmc.MarkingKey(mk)
		for gi, g := range l.goals {
			if mk.Tokens(g) > 0 {
				l.goalReached[gi] = true
				absorbing = true
			}
		}
	})
	if _, ok := l.seen[key]; ok {
		return false, absorbing
	}
	if len(l.seen) >= l.cfg.MaxStates {
		l.report.Truncated = true
		return false, absorbing
	}
	l.seen[key] = struct{}{}
	if l.facts != nil {
		l.quiet(mk, func() { l.factsChecks(mk) })
	}
	return true, absorbing
}

// explore walks the bounded marking graph breadth-first from the initial
// marking, mirroring the exact solver's reachability analysis but collecting
// diagnostics instead of failing on the first defect.
func (l *linter) explore() {
	model := l.model
	l.enabledTimed = make([]bool, model.NumTimed())
	l.enabledInstant = make([]bool, model.NumInstant())

	init := model.InitialMarking()
	init.SetObserver(l.rec)
	for _, st := range l.stabilize(init) {
		if fresh, absorbing := l.intern(st); fresh && !absorbing {
			l.queue = append(l.queue, st)
		}
	}

	for len(l.queue) > 0 {
		mk := l.queue[0]
		l.queue = l.queue[1:]
		for i := 0; i < model.NumTimed(); i++ {
			act := model.Timed(i)
			if !l.safeEnabledTimed(act, mk) {
				continue
			}
			l.enabledTimed[i] = true
			l.checkRate(act, mk)
			ws := l.caseWeights(act.Name, act.Cases, mk)
			ncases := len(act.Cases)
			if ncases == 0 {
				ncases = 1
			}
			for ci := 0; ci < ncases; ci++ {
				if ws != nil && weightIsZero(ws, ci) {
					continue
				}
				succ := mk.Clone()
				if !l.safeApply(act.Name, succ, func() { san.FireTimed(act, ci, succ) }) {
					continue
				}
				for _, st := range l.stabilize(succ) {
					if fresh, absorbing := l.intern(st); fresh && !absorbing {
						l.queue = append(l.queue, st)
					}
				}
			}
		}
	}
}

// weightIsZero reports whether case ci carries zero weight (treating an
// out-of-range index defensively as non-zero so the branch still fires).
func weightIsZero(ws []float64, ci int) bool {
	return ci < len(ws) && ws[ci] == 0
}

// stabilize resolves the instantaneous closure of mk into the stable
// markings reachable through zero-time firings, branching over every
// positive-weight case. Conflicting equal-priority activations are reported
// (SAN006) and resolved deterministically by registration order.
func (l *linter) stabilize(mk *san.Marking) []*san.Marking {
	var out []*san.Marking
	var walk func(m *san.Marking, depth int)
	walk = func(m *san.Marking, depth int) {
		if depth > l.cfg.MaxInstantDepth {
			var witness string
			l.quiet(m, func() { witness = m.Summary() })
			l.diag(CheckInstantLivelock, SeverityError, "", witness,
				"instantaneous closure exceeded depth %d; instantaneous activities likely re-enable forever", l.cfg.MaxInstantDepth)
			return
		}
		best := -1
		var tied []int
		for i := 0; i < l.model.NumInstant(); i++ {
			act := l.model.Instant(i)
			if !l.safeEnabledInstant(act, m) {
				continue
			}
			l.enabledInstant[i] = true
			switch {
			case best < 0 || act.Priority < l.model.Instant(best).Priority:
				best = i
				tied = tied[:0]
			case act.Priority == l.model.Instant(best).Priority:
				tied = append(tied, i)
			}
		}
		if best < 0 {
			out = append(out, m)
			return
		}
		for _, other := range tied {
			a, b := l.model.Instant(best).Name, l.model.Instant(other).Name
			var witness string
			l.quiet(m, func() { witness = m.Summary() })
			l.diag(CheckInstantConflict, SeverityError, a+" / "+b, witness,
				"instantaneous activities %q and %q are enabled together with equal priority %d; their firing order is undefined",
				a, b, l.model.Instant(best).Priority)
		}
		act := l.model.Instant(best)
		ws := l.caseWeights(act.Name, act.Cases, m)
		ncases := len(act.Cases)
		if ncases == 0 {
			ncases = 1
		}
		for ci := 0; ci < ncases; ci++ {
			if ws != nil && weightIsZero(ws, ci) {
				continue
			}
			next := m.Clone()
			if !l.safeApply(act.Name, next, func() { san.FireInstant(act, ci, next) }) {
				continue
			}
			walk(next, depth+1)
		}
	}
	walk(mk, 0)
	return out
}

// safeEnabledTimed evaluates the enabling predicate, converting a panic
// into a SAN008 diagnostic (and treating the activity as disabled there).
func (l *linter) safeEnabledTimed(act *san.TimedActivity, mk *san.Marking) (enabled bool) {
	defer l.recoverPanic("enabling predicate of", act.Name, mk)
	return act.EnabledIn(mk)
}

func (l *linter) safeEnabledInstant(act *san.InstantActivity, mk *san.Marking) (enabled bool) {
	defer l.recoverPanic("enabling predicate of", act.Name, mk)
	return act.EnabledIn(mk)
}

// safeApply runs an effect application, converting a panic (negative
// marking, extended-place index out of range) into a SAN008 diagnostic.
// It reports whether the effect completed.
func (l *linter) safeApply(activity string, mk *san.Marking, fire func()) (ok bool) {
	defer l.recoverPanic("effect of", activity, mk)
	fire()
	return true
}

func (l *linter) recoverPanic(what, activity string, mk *san.Marking) {
	if r := recover(); r != nil {
		var witness string
		l.quiet(mk, func() { witness = mk.Summary() })
		l.diag(CheckPanic, SeverityError, activity, witness,
			"%s %q panicked: %v", what, activity, r)
	}
}

// checkRate validates the rate of an enabled exponential activity (SAN009).
func (l *linter) checkRate(act *san.TimedActivity, mk *san.Marking) {
	if !act.Exponential() {
		return
	}
	defer l.recoverPanic("rate function of", act.Name, mk)
	if _, err := act.RateIn(mk); err != nil {
		var witness string
		l.quiet(mk, func() { witness = mk.Summary() })
		l.diag(CheckInvalidRate, SeverityError, act.Name, witness, "%v", err)
	}
}

// caseWeights evaluates an activity's case weights, recording the vector
// for the normalization check and reporting invalid weights (SAN001). It
// returns nil when the weights are unusable; callers then explore every
// case so coverage does not collapse behind the defect.
func (l *linter) caseWeights(activity string, cases []san.Case, mk *san.Marking) []float64 {
	if len(cases) == 0 {
		return nil
	}
	var (
		ws  []float64
		err error
	)
	if !l.safeApply(activity, mk, func() { ws, err = san.CaseWeightsFor(activity, cases, mk, nil) }) {
		return nil
	}
	if err != nil {
		var witness string
		l.quiet(mk, func() { witness = mk.Summary() })
		l.diag(CheckCaseWeights, SeverityError, activity, witness, "%v", err)
		return nil
	}
	if len(cases) >= 2 {
		rec := l.weight[activity]
		if rec == nil {
			rec = &weightRecord{first: append([]float64(nil), ws...)}
			l.weight[activity] = rec
		} else if !rec.varies {
			for i, w := range ws {
				if math.Float64bits(w) != math.Float64bits(rec.first[i]) {
					rec.varies = true
					break
				}
			}
		}
		rec.evals++
	}
	return ws
}

// absenceChecks applies the whole-model checks that assert something never
// happened during exploration. They are meaningless on a truncated graph,
// so truncation suppresses them behind a single SAN010 finding.
func (l *linter) absenceChecks() {
	if l.report.Truncated {
		l.diag(CheckTruncated, SeverityWarning, "", "",
			"exploration stopped at MaxStates=%d; suppressed checks: %s (dead place), %s (stuck place), %s (never enabled), %s (goal unreachable)",
			l.cfg.MaxStates, CheckDeadPlace, CheckStuckPlace, CheckNeverEnabled, CheckGoalUnreachable)
		return
	}
	m := l.model
	for p := 0; p < m.NumPlaces(); p++ {
		id := san.PlaceID(p)
		if !l.rec.readP[p] && !l.observed[id] && !l.isGoal(id) {
			l.diag(CheckDeadPlace, SeverityWarning, m.PlaceName(id), "",
				"place is never read by any predicate, rate, weight or effect (declare it Observed if it is a measure-only counter)")
		}
		if !l.rec.writeP[p] {
			l.diag(CheckStuckPlace, SeverityWarning, m.PlaceName(id), "",
				"place is never written by any effect; it is stuck at its initial marking %d", m.PlaceInitial(id))
		}
	}
	for p := 0; p < m.NumExtPlaces(); p++ {
		id := san.ExtPlaceID(p)
		if !l.rec.readE[p] {
			l.diag(CheckDeadPlace, SeverityWarning, m.ExtPlaceName(id), "",
				"extended place is never read by any predicate, rate, weight or effect")
		}
		if !l.rec.writeE[p] {
			l.diag(CheckStuckPlace, SeverityWarning, m.ExtPlaceName(id), "",
				"extended place is never written by any effect; it is stuck at its initial contents %v", m.ExtPlaceInitial(id))
		}
	}
	for i := 0; i < m.NumTimed(); i++ {
		if !l.enabledTimed[i] {
			l.diag(CheckNeverEnabled, SeverityWarning, m.Timed(i).Name, "",
				"timed activity is enabled in no reachable marking (within %d states)", len(l.seen))
		}
	}
	for i := 0; i < m.NumInstant(); i++ {
		if !l.enabledInstant[i] {
			l.diag(CheckNeverEnabled, SeverityWarning, m.Instant(i).Name, "",
				"instantaneous activity is enabled in no reachable marking (within %d states)", len(l.seen))
		}
	}
	for gi, g := range l.goals {
		if !l.goalReached[gi] {
			l.diag(CheckGoalUnreachable, SeverityError, m.PlaceName(g), "",
				"goal place is marked in no reachable marking (within %d states); the measure defined on it is identically zero", len(l.seen))
		}
	}
}

func (l *linter) isGoal(p san.PlaceID) bool {
	for _, g := range l.goals {
		if g == p {
			return true
		}
	}
	return false
}

// normalizationChecks flags activities whose multi-case weights were
// observably constant yet do not sum to 1 (SAN002). The simulator
// normalises weights, so such models run — but the modeller almost
// certainly meant probabilities, and a missing branch silently rescales the
// others.
func (l *linter) normalizationChecks() {
	for activity, rec := range l.weight {
		if rec.varies || rec.evals == 0 {
			continue
		}
		sum := 0.0
		for _, w := range rec.first {
			sum += w
		}
		if math.Abs(sum-1) > 1e-6 {
			l.diag(CheckWeightNormalization, SeverityWarning, activity, "",
				"case weights %v are constant across all %d observed markings but sum to %v, not 1; if these are probabilities a case is missing or misweighted",
				rec.first, rec.evals, sum)
		}
	}
}
