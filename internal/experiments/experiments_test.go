package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps figure runs fast in unit tests; statistical shape checks
// live in the repository-level EXPERIMENTS run, not here.
var quickCfg = Config{Seed: 1, MaxBatches: 50}

func TestRegistryCompleteness(t *testing.T) {
	reg := Registry()
	want := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "lanes"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing runner for %s", id)
		}
	}
	ids := IDs()
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

func checkResult(t *testing.T, res *Result, wantSeries, wantPoints int) {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	if len(res.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", res.ID, len(res.Series), wantSeries)
	}
	for _, s := range res.Series {
		if len(s.X) != wantPoints || len(s.Y) != wantPoints || len(s.CI) != wantPoints {
			t.Fatalf("%s/%s: %d/%d/%d points, want %d", res.ID, s.Label, len(s.X), len(s.Y), len(s.CI), wantPoints)
		}
		if s.Batches == 0 {
			t.Fatalf("%s/%s: no batches recorded", res.ID, s.Label)
		}
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Fatalf("%s/%s: x grid not increasing: %v", res.ID, s.Label, s.X)
			}
		}
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("%s/%s: estimate %v out of [0,1] at %v", res.ID, s.Label, y, s.X[i])
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4, 5)
	for i, wantLabel := range []string{"n=8", "n=10", "n=12", "n=14"} {
		if res.Series[i].Label != wantLabel {
			t.Errorf("series %d label %q, want %q", i, res.Series[i].Label, wantLabel)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 3, 5)
	if !strings.Contains(res.Series[0].Label, "1e-06") {
		t.Errorf("unexpected label %q", res.Series[0].Label)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 3, 5)
	// The x axis is the platoon size here.
	if res.Series[0].X[0] != 10 || res.Series[0].X[4] != 18 {
		t.Errorf("n grid %v", res.Series[0].X)
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 6, 5)
	rho1, rho2 := 0, 0
	for _, s := range res.Series {
		switch {
		case strings.HasPrefix(s.Label, "ρ=1"):
			rho1++
		case strings.HasPrefix(s.Label, "ρ=2"):
			rho2++
		}
	}
	if rho1 != 3 || rho2 != 3 {
		t.Fatalf("expected 3 series per load, got ρ=1:%d ρ=2:%d", rho1, rho2)
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4, 5)
	want := []string{"DD", "DC", "CD", "CC"}
	for i, s := range res.Series {
		if s.Label != want[i] {
			t.Errorf("series %d label %q, want %q", i, s.Label, want[i])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	res, err := Fig15(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4, 5)
}

func TestAllRunsEveryFigure(t *testing.T) {
	results, err := All(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("All returned %d results", len(results))
	}
	for i, id := range IDs() {
		if results[i].ID != id {
			t.Fatalf("result %d is %s, want %s", i, results[i].ID, id)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxBatches != 4000 {
		t.Fatalf("default MaxBatches %d", cfg.MaxBatches)
	}
	cfg = Config{MaxBatches: 7}.withDefaults()
	if cfg.MaxBatches != 7 {
		t.Fatal("explicit MaxBatches overridden")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Fig14(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig14(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatalf("figure runs not reproducible at series %d point %d", i, j)
			}
		}
	}
}

func TestLanesExtensionShape(t *testing.T) {
	res, err := LanesExtension(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 3, 5)
	want := []string{"lanes=2", "lanes=3", "lanes=4"}
	for i, s := range res.Series {
		if s.Label != want[i] {
			t.Errorf("series %d label %q, want %q", i, s.Label, want[i])
		}
	}
}
