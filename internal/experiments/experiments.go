// Package experiments reproduces every figure of the paper's evaluation
// (Section 4): one runner per figure, each encoding the exact workload
// parameters of the corresponding caption and producing the series the
// paper plots. The runners are shared by cmd/ahs-experiments and by the
// repository-level benchmarks (bench_test.go).
//
//	Figure 10 — S(t) vs trip duration for several platoon sizes n
//	Figure 11 — S(t) vs trip duration for several failure rates λ
//	Figure 12 — S(6h) vs n for several failure rates λ
//	Figure 13 — S(t) vs trip duration for several join/leave loads ρ
//	Figure 14 — S(t) vs trip duration for the four coordination strategies
//	Figure 15 — S(6h) vs n for the four coordination strategies
package experiments

import (
	"fmt"
	"sort"

	"ahs/internal/core"
	"ahs/internal/platoon"
	"ahs/internal/stats"
)

// Config tunes the estimation effort of a figure run.
type Config struct {
	// Seed selects the deterministic random stream family.
	Seed uint64
	// MaxBatches caps simulation batches per estimated curve/point;
	// 0 means 4000 (a quick-look setting; the paper used >= 10000).
	MaxBatches uint64
	// StopRule optionally stops each estimation early once converged
	// (stats.PaperStopRule reproduces §4.1). Zero value: fixed batches.
	StopRule stats.RelativeStopRule
	// Workers is the simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// NoBias disables the automatic rare-event forcing. Only sensible for
	// λ ≳ 1e-3/hr; the paper's λ = 1e-5/hr base case is unreachable by
	// naive simulation.
	NoBias bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatches == 0 {
		c.MaxBatches = 4000
	}
	return c
}

// Series is one plotted line: Y[i] estimates the measure at X[i], with the
// confidence interval in CI[i].
type Series struct {
	Label   string
	X       []float64
	Y       []float64
	CI      []stats.Interval
	Batches uint64
}

// Result is one reproduced figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Runner produces one figure.
type Runner func(Config) (*Result, error)

// Registry maps experiment ids to their runners: "fig10".."fig15" are the
// paper's figures; "lanes" is this library's extension experiment for the
// paper's multi-platoon future work.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig10": Fig10,
		"fig11": Fig11,
		"fig12": Fig12,
		"fig13": Fig13,
		"fig14": Fig14,
		"fig15": Fig15,
		"lanes": LanesExtension,
	}
}

// IDs returns the registered figure ids in order.
func IDs() []string {
	ids := make([]string, 0, 6)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// tripGrid is the 2–10 hour trip-duration grid used by the time-curve
// figures.
var tripGrid = []float64{2, 4, 6, 8, 10}

// estimateCurve runs one S(t) curve for the given parameters. It is the
// single estimation path of this package: every figure — curve or point —
// builds its model through the one audited core.Build and evaluates it with
// identical options, so a bias or seeding fix lands everywhere at once.
func estimateCurve(p core.Params, label string, times []float64, cfg Config) (Series, error) {
	a, err := core.Build(p)
	if err != nil {
		return Series{}, err
	}
	opts := core.EvalOptions{
		Times:      times,
		Seed:       cfg.Seed,
		StopRule:   cfg.StopRule,
		MaxBatches: cfg.MaxBatches,
		Workers:    cfg.Workers,
	}
	if !cfg.NoBias {
		opts.FailureBias = a.SuggestedFailureBias(times[len(times)-1])
	}
	curve, err := a.UnsafetyCurve(opts)
	if err != nil {
		return Series{}, fmt.Errorf("experiments: %s: %w", label, err)
	}
	return Series{
		Label:   label,
		X:       append([]float64(nil), times...),
		Y:       append([]float64(nil), curve.Mean...),
		CI:      append([]stats.Interval(nil), curve.Intervals...),
		Batches: curve.Batches,
	}, nil
}

// estimatePoint runs a single S(t) estimation through estimateCurve.
func estimatePoint(p core.Params, label string, t float64, cfg Config) (stats.Interval, uint64, error) {
	s, err := estimateCurve(p, label, []float64{t}, cfg)
	if err != nil {
		return stats.Interval{}, 0, err
	}
	return s.CI[0], s.Batches, nil
}

// Fig10 reproduces Figure 10: S(t) versus trip duration for platoon sizes
// n ∈ {8, 10, 12, 14}, with λ = 1e-5/hr, join 12/hr, leave 4/hr, DD.
func Fig10(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig10",
		Title:  "S(t) vs trip duration for different n (λ=1e-5/hr, join=12/hr, leave=4/hr)",
		XLabel: "trip duration (h)",
		YLabel: "unsafety S(t)",
	}
	for _, n := range []int{8, 10, 12, 14} {
		p := core.DefaultParams().WithPlatoonSize(n)
		s, err := estimateCurve(p, fmt.Sprintf("n=%d", n), tripGrid, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig11 reproduces Figure 11: S(t) versus trip duration for failure rates
// λ ∈ {1e-6, 1e-5, 1e-4}/hr, with n = 10.
func Fig11(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig11",
		Title:  "S(t) vs trip duration for different λ (n=10, join=12/hr, leave=4/hr)",
		XLabel: "trip duration (h)",
		YLabel: "unsafety S(t)",
	}
	for _, lambda := range []float64{1e-6, 1e-5, 1e-4} {
		p := core.DefaultParams()
		p.Lambda = lambda
		s, err := estimateCurve(p, fmt.Sprintf("λ=%.0e/hr", lambda), tripGrid, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig12 reproduces Figure 12: S(t) at t = 6 h versus the maximum platoon
// size n ∈ {10, 12, 14, 16, 18} for λ ∈ {1e-6, 1e-5, 1e-4}/hr.
func Fig12(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig12",
		Title:  "S(6h) vs n for different λ (join=12/hr, leave=4/hr)",
		XLabel: "max vehicles per platoon n",
		YLabel: "unsafety S(6h)",
	}
	ns := []int{10, 12, 14, 16, 18}
	for _, lambda := range []float64{1e-6, 1e-5, 1e-4} {
		s := Series{Label: fmt.Sprintf("λ=%.0e/hr", lambda)}
		for _, n := range ns {
			p := core.DefaultParams().WithPlatoonSize(n)
			p.Lambda = lambda
			iv, batches, err := estimatePoint(p, s.Label, 6, cfg)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, iv.Point)
			s.CI = append(s.CI, iv)
			s.Batches += batches
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig13 reproduces Figure 13: S(t) versus trip duration for loads
// ρ = join/leave ∈ {1, 2} with several absolute join/leave pairs
// (n = 8, λ = 1e-5/hr).
func Fig13(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig13",
		Title:  "S(t) vs trip duration for different join/leave rates (ρ=join/leave, n=8, λ=1e-5/hr)",
		XLabel: "trip duration (h)",
		YLabel: "unsafety S(t)",
	}
	pairs := []struct{ join, leave float64 }{
		{4, 4}, {8, 8}, {12, 12}, // ρ = 1
		{8, 4}, {16, 8}, {24, 12}, // ρ = 2
	}
	for _, pair := range pairs {
		p := core.DefaultParams().WithPlatoonSize(8)
		p.JoinRate = pair.join
		p.LeaveRate = pair.leave
		label := fmt.Sprintf("ρ=%g (join=%g, leave=%g)", pair.join/pair.leave, pair.join, pair.leave)
		s, err := estimateCurve(p, label, tripGrid, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig14 reproduces Figure 14: S(t) versus trip duration for the four
// coordination strategies of Table 3 (n = 10, λ = 1e-5/hr).
func Fig14(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig14",
		Title:  "S(t) vs trip duration per coordination strategy (n=10, λ=1e-5/hr, join=12/hr, leave=4/hr)",
		XLabel: "trip duration (h)",
		YLabel: "unsafety S(t)",
	}
	for _, strategy := range platoon.AllStrategies() {
		p := core.DefaultParams().WithStrategy(strategy)
		s, err := estimateCurve(p, strategy.String(), tripGrid, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig15 reproduces Figure 15: S(t) at t = 6 h versus n for the four
// coordination strategies (λ = 1e-5/hr).
func Fig15(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig15",
		Title:  "S(6h) vs n per coordination strategy (λ=1e-5/hr, join=12/hr, leave=4/hr)",
		XLabel: "max vehicles per platoon n",
		YLabel: "unsafety S(6h)",
	}
	ns := []int{10, 12, 14, 16, 18}
	for _, strategy := range platoon.AllStrategies() {
		s := Series{Label: strategy.String()}
		for _, n := range ns {
			p := core.DefaultParams().WithStrategy(strategy).WithPlatoonSize(n)
			iv, batches, err := estimatePoint(p, s.Label, 6, cfg)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, iv.Point)
			s.CI = append(s.CI, iv)
			s.Batches += batches
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// LanesExtension runs the extension experiment for the paper's
// "larger number of platoons" future work: S(t) versus trip duration for
// highways of 2, 3 and 4 lanes (one platoon per lane, n = 8, λ = 1e-5/hr).
// More lanes put more vehicles into one coordination domain, so unsafety
// grows roughly with the vehicle count.
func LanesExtension(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "lanes",
		Title:  "Extension: S(t) vs trip duration for 2..4 lanes (n=8, λ=1e-5/hr, join=12/hr, leave=4/hr)",
		XLabel: "trip duration (h)",
		YLabel: "unsafety S(t)",
	}
	for _, lanes := range []int{2, 3, 4} {
		p := core.DefaultParams().WithPlatoonSize(8)
		p.Lanes = lanes
		s, err := estimateCurve(p, fmt.Sprintf("lanes=%d", lanes), tripGrid, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// All runs every registered figure in id order.
func All(cfg Config) ([]*Result, error) {
	reg := Registry()
	out := make([]*Result, 0, len(reg))
	for _, id := range IDs() {
		res, err := reg[id](cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
