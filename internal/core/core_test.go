package core

import (
	"math"
	"strings"
	"testing"

	"ahs/internal/ctmc"
	"ahs/internal/platoon"
	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N != 10 || p.Lambda != 1e-5 || p.JoinRate != 12 || p.LeaveRate != 4 || p.ChangeRate != 6 {
		t.Fatalf("defaults do not match §4.1: %+v", p)
	}
	for _, m := range platoon.AllManeuvers() {
		r := p.ManeuverRates[m]
		if r < 15 || r > 30 {
			t.Errorf("maneuver rate for %v = %v outside the paper's 15-30/hr", m, r)
		}
	}
	if p.Strategy != platoon.DD {
		t.Error("default strategy must be DD (the paper's base case)")
	}
}

func TestParamsValidation(t *testing.T) {
	mutate := func(f func(*Params)) Params {
		p := DefaultParams()
		f(&p)
		return p
	}
	bad := map[string]Params{
		"zero N":            mutate(func(p *Params) { p.N = 0 }),
		"zero lambda":       mutate(func(p *Params) { p.Lambda = 0 }),
		"negative lambda":   mutate(func(p *Params) { p.Lambda = -1 }),
		"zero man rate":     mutate(func(p *Params) { p.ManeuverRates[platoon.AS] = 0 }),
		"negative join":     mutate(func(p *Params) { p.JoinRate = -1 }),
		"no passthrough":    mutate(func(p *Params) { p.PassThroughRate = 0 }),
		"base failure >= 1": mutate(func(p *Params) { p.ManeuverBaseFailure = 1 }),
		"participant q":     mutate(func(p *Params) { p.ParticipantFailure = 1 }),
		"penalty > 1":       mutate(func(p *Params) { p.DegradedPenalty = 1.5 }),
		"no strategy":       mutate(func(p *Params) { p.Strategy = platoon.Strategy{} }),
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := Build(p); err == nil {
			t.Errorf("%s: Build must reject invalid params", name)
		}
	}
	// Zero dynamicity rates are allowed (reduced models).
	p := DefaultParams()
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	if err := p.Validate(); err != nil {
		t.Fatalf("static configuration must validate: %v", err)
	}
}

func TestLoad(t *testing.T) {
	p := DefaultParams()
	if p.Load() != 3 {
		t.Fatalf("load %v, want 12/4 = 3", p.Load())
	}
	p.LeaveRate = 0
	if p.Load() != 0 {
		t.Fatal("load with zero leave rate must be 0")
	}
}

func TestBuildStructure(t *testing.T) {
	a := MustBuild(DefaultParams())
	slots := 2 * a.Params.N
	if a.Slots() != slots {
		t.Fatalf("slots %d, want %d", a.Slots(), slots)
	}
	// Per vehicle: 6 failure modes + 1 maneuver + 1 transit exit.
	// Global: join, leave1, leave2, ch1, ch2.
	wantTimed := slots*8 + 5
	if got := a.Model.NumTimed(); got != wantTimed {
		t.Fatalf("timed activities %d, want %d", got, wantTimed)
	}
	if got := a.Model.NumInstant(); got != 1 {
		t.Fatalf("instant activities %d, want 1 (to_KO)", got)
	}
	if len(a.failureActivities) != slots*6 {
		t.Fatalf("failure activity registry has %d entries, want %d", len(a.failureActivities), slots*6)
	}
	for _, name := range a.failureActivities {
		if a.Model.TimedIndex(name) < 0 {
			t.Fatalf("registered failure activity %q missing from model", name)
		}
	}
}

func TestBuildStaticConfigurationOmitsDynamics(t *testing.T) {
	p := DefaultParams()
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	a := MustBuild(p)
	wantTimed := 2 * p.N * 7 // only failures + maneuvers
	if got := a.Model.NumTimed(); got != wantTimed {
		t.Fatalf("static model has %d timed activities, want %d", got, wantTimed)
	}
	for _, name := range []string{"dynamicity.join", "dynamicity.leave1", "dynamicity.ch1"} {
		if a.Model.TimedIndex(name) >= 0 {
			t.Errorf("static model must not contain %q", name)
		}
	}
}

func TestInitialMarking(t *testing.T) {
	a := MustBuild(DefaultParams())
	mk := a.Model.InitialMarking()
	sizes := a.LaneSizes(mk)
	if len(sizes) != 2 || sizes[0] != 10 || sizes[1] != 10 {
		t.Fatalf("initial platoon sizes %v", sizes)
	}
	if a.VehiclesInSystem(mk) != 20 {
		t.Fatalf("initial vehicles %d", a.VehiclesInSystem(mk))
	}
	nA, nB, nC := a.ActiveFailures(mk)
	if nA+nB+nC != 0 {
		t.Fatal("initial severity counters must be zero")
	}
	if a.Unsafe(mk) || a.UnsafetyIndicator(mk) != 0 {
		t.Fatal("initial marking must be safe")
	}
	if vOK, vKO, ok := a.Outcomes(mk); !ok || vOK != 0 || vKO != 0 {
		t.Fatal("initial outcome counters must be zero")
	}
	view := a.View(mk)
	if l, _ := view.Leader(0); l != 0 {
		t.Fatalf("platoon 1 leader %d, want vehicle 0", l)
	}
	if l, _ := view.Leader(1); l != 10 {
		t.Fatalf("platoon 2 leader %d, want vehicle 10", l)
	}
	if err := a.CheckInvariants(mk); err != nil {
		t.Fatal(err)
	}
}

// invariantObserver fails the test on the first invariant violation.
type invariantObserver struct {
	t   *testing.T
	a   *AHS
	err error
}

func (o *invariantObserver) OnEvent(tm float64, activity string, mk *san.Marking) {
	if o.err != nil {
		return
	}
	if err := o.a.CheckInvariants(mk); err != nil {
		o.err = err
		o.t.Errorf("invariant violated at t=%v after %q: %v", tm, activity, err)
	}
}

func TestInvariantsPreservedAlongTrajectories(t *testing.T) {
	// Hammer the model with very unreliable vehicles and check every
	// reachable marking. No Stop predicate: the dynamics keep running
	// after KO_total, which must stay consistent too.
	p := DefaultParams()
	p.N = 4
	p.Lambda = 0.1
	a := MustBuild(p)
	obs := &invariantObserver{t: t, a: a}
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 30, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(7)
	for i := 0; i < 300; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			t.Fatal(err)
		}
		if obs.err != nil {
			t.Fatalf("stopped after first violation (seed %d)", i)
		}
	}
}

func TestInvariantsWithAllStrategies(t *testing.T) {
	for _, s := range platoon.AllStrategies() {
		p := DefaultParams()
		p.N = 3
		p.Lambda = 0.2
		p.Strategy = s
		a := MustBuild(p)
		obs := &invariantObserver{t: t, a: a}
		r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 20, Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.NewSource(11)
		for i := 0; i < 100; i++ {
			if _, err := r.Run(src.Stream(uint64(i))); err != nil {
				t.Fatalf("strategy %v: %v", s, err)
			}
		}
		if obs.err != nil {
			t.Fatalf("strategy %v: invariant violation", s)
		}
	}
}

func TestOutcomesAccumulate(t *testing.T) {
	p := DefaultParams()
	p.N = 4
	p.Lambda = 0.2
	a := MustBuild(p)
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 50})
	if err != nil {
		t.Fatal(err)
	}
	probe := &sim.Probe{
		Times: []float64{50},
		Value: func(mk *san.Marking) float64 {
			vOK, _, _ := a.Outcomes(mk)
			return float64(vOK)
		},
	}
	if _, err := r.Run(rng.NewStream(3), probe); err != nil {
		t.Fatal(err)
	}
	if probe.Values[0] == 0 {
		t.Fatal("expected some successful maneuver exits (v_OK) at this failure rate")
	}
}

func TestOutcomesDisabled(t *testing.T) {
	p := DefaultParams()
	p.TrackOutcomes = false
	a := MustBuild(p)
	if _, _, ok := a.Outcomes(a.Model.InitialMarking()); ok {
		t.Fatal("Outcomes must report ok=false when tracking is disabled")
	}
}

func TestUnsafetyCurveMonotone(t *testing.T) {
	p := DefaultParams()
	p.Lambda = 0.01
	a := MustBuild(p)
	curve, err := a.UnsafetyCurve(EvalOptions{
		Times:      []float64{2, 4, 6, 8, 10},
		Seed:       1,
		MaxBatches: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve.Mean); i++ {
		if curve.Mean[i] < curve.Mean[i-1] {
			t.Fatalf("S(t) not monotone: %v", curve.Mean)
		}
	}
	if curve.Final() <= 0 {
		t.Fatal("expected positive unsafety at lambda=0.01")
	}
}

func TestUnsafetyIncreasesWithLambda(t *testing.T) {
	run := func(lambda float64) float64 {
		p := DefaultParams()
		p.Lambda = lambda
		a := MustBuild(p)
		iv, err := a.Unsafety(6, EvalOptions{Seed: 2, MaxBatches: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return iv.Point
	}
	low, high := run(0.003), run(0.03)
	if !(high > 3*low) {
		t.Fatalf("S(6h) at lambda=0.03 (%v) not clearly above lambda=0.003 (%v)", high, low)
	}
}

func TestUnsafetyIncreasesWithN(t *testing.T) {
	run := func(n int) float64 {
		p := DefaultParams()
		p.N = n
		p.Lambda = 0.01
		a := MustBuild(p)
		iv, err := a.Unsafety(6, EvalOptions{Seed: 3, MaxBatches: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return iv.Point
	}
	small, large := run(4), run(14)
	if !(large > 1.5*small) {
		t.Fatalf("S(6h) with n=14 (%v) not clearly above n=4 (%v)", large, small)
	}
}

func TestCentralizedCoordinationLessSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo statistical check; skipped under -short (race CI)")
	}
	// Amplified regime: any degraded participant dooms a maneuver.
	run := func(s platoon.Strategy) float64 {
		p := DefaultParams()
		p.Lambda = 0.02
		p.ParticipantFailure = 0.1
		p.DegradedPenalty = 0
		p.Strategy = s
		a := MustBuild(p)
		iv, err := a.Unsafety(10, EvalOptions{Seed: 4, MaxBatches: 8000})
		if err != nil {
			t.Fatal(err)
		}
		return iv.Point
	}
	dd, cc := run(platoon.DD), run(platoon.CC)
	if !(cc > dd) {
		t.Fatalf("CC unsafety %v not above DD %v", cc, dd)
	}
}

func TestImportanceSamplingAgreesWithNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo statistical check; skipped under -short (race CI)")
	}
	p := DefaultParams()
	p.Lambda = 1e-3
	a := MustBuild(p)
	naive, err := a.Unsafety(10, EvalOptions{Seed: 5, MaxBatches: 60000})
	if err != nil {
		t.Fatal(err)
	}
	biased, err := a.Unsafety(10, EvalOptions{
		Seed:        6,
		MaxBatches:  20000,
		FailureBias: a.SuggestedFailureBias(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Point <= 0 {
		t.Fatalf("naive estimate empty: %v", naive)
	}
	gap := math.Abs(naive.Point - biased.Point)
	combined := naive.HalfWidth() + biased.HalfWidth()
	if gap > 2*combined {
		t.Fatalf("naive %v and IS %v disagree", naive, biased)
	}
}

func TestSuggestedFailureBias(t *testing.T) {
	a := MustBuild(DefaultParams())
	b10 := a.SuggestedFailureBias(10)
	b2 := a.SuggestedFailureBias(2)
	if b10 < 1 || b2 < 1 {
		t.Fatal("bias must be at least 1")
	}
	if !(b2 > b10) {
		t.Fatal("shorter horizon needs a stronger bias")
	}
	// At the default λ=1e-5 the factor must be substantial.
	if b10 < 50 {
		t.Fatalf("bias %v suspiciously small for lambda=1e-5", b10)
	}
	// High λ: no forcing needed.
	p := DefaultParams()
	p.Lambda = 0.05
	if got := MustBuild(p).SuggestedFailureBias(10); got != 1 {
		t.Fatalf("bias %v, want 1 at high lambda", got)
	}
}

func TestUnsafetyCurveValidation(t *testing.T) {
	a := MustBuild(DefaultParams())
	if _, err := a.UnsafetyCurve(EvalOptions{}); err == nil {
		t.Fatal("expected error for empty time grid")
	}
	if _, err := a.UnsafetyCurve(EvalOptions{Times: []float64{5, 1}}); err == nil {
		t.Fatal("expected error for unsorted grid")
	}
}

// TestExactCTMCCrossCheck is the end-to-end correctness anchor for the AHS
// model: on a reduced configuration (one vehicle per platoon, no
// dynamicity) the simulator's unsafety estimate must match the exact
// transient solution of the underlying CTMC.
func TestExactCTMCCrossCheck(t *testing.T) {
	p := DefaultParams()
	p.N = 1
	p.Lambda = 0.02
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	p.TrackOutcomes = false
	a := MustBuild(p)

	g, err := ctmc.Explore(a.Model, ctmc.ExploreOptions{Absorb: a.Unsafe, MaxStates: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckGeneratorConsistency(); err != nil {
		t.Fatal(err)
	}
	const horizon = 8.0
	exact, err := g.TransientProbability(horizon, a.Unsafe)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 {
		t.Fatalf("exact unsafety %v must be positive at lambda=0.02", exact)
	}

	iv, err := a.Unsafety(horizon, EvalOptions{Seed: 9, MaxBatches: 60000})
	if err != nil {
		t.Fatal(err)
	}
	se := iv.HalfWidth() / 1.96
	if math.Abs(iv.Point-exact) > 5*se+1e-12 {
		t.Fatalf("simulated %v vs exact %v (se %v)", iv.Point, exact, se)
	}
}

// TestExactCTMCCrossCheckRareEvent validates the importance-sampling
// estimator with the horizon-calibrated forcing factor against the exact
// solution at a failure rate where naive simulation would need millions of
// batches.
func TestExactCTMCCrossCheckRareEvent(t *testing.T) {
	p := DefaultParams()
	p.N = 1
	p.Lambda = 1e-3
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	p.TrackOutcomes = false
	a := MustBuild(p)

	g, err := ctmc.Explore(a.Model, ctmc.ExploreOptions{Absorb: a.Unsafe, MaxStates: 50000})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 8.0
	exact, err := g.TransientProbability(horizon, a.Unsafe)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := a.Unsafety(horizon, EvalOptions{
		Seed:        9,
		MaxBatches:  60000,
		FailureBias: a.SuggestedFailureBias(horizon),
	})
	if err != nil {
		t.Fatal(err)
	}
	se := iv.HalfWidth() / 1.96
	if math.Abs(iv.Point-exact) > 5*se+1e-12 {
		t.Fatalf("simulated %v vs exact %v (se %v)", iv.Point, exact, se)
	}
	// The IS estimate at a ~5e-5 measure must actually be tight.
	if iv.RelativeHalfWidth() > 0.5 {
		t.Fatalf("IS interval too loose: %v", iv)
	}
}

func TestExactCTMCCrossCheckWithDynamics(t *testing.T) {
	// Small configuration with joins/leaves enabled: checks the
	// Dynamicity submodel against the exact solution too.
	p := DefaultParams()
	p.N = 1
	p.Lambda = 2e-3
	p.JoinRate, p.LeaveRate, p.ChangeRate = 6, 2, 3
	p.TrackOutcomes = false
	a := MustBuild(p)

	g, err := ctmc.Explore(a.Model, ctmc.ExploreOptions{Absorb: a.Unsafe, MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 5.0
	exact, err := g.TransientProbability(horizon, a.Unsafe)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := a.Unsafety(horizon, EvalOptions{
		Seed:        10,
		MaxBatches:  60000,
		FailureBias: a.SuggestedFailureBias(horizon),
	})
	if err != nil {
		t.Fatal(err)
	}
	se := iv.HalfWidth() / 1.96
	if math.Abs(iv.Point-exact) > 5*se+1e-12 {
		t.Fatalf("simulated %v vs exact %v (se %v)", iv.Point, exact, se)
	}
}

func TestModelNameEncodesConfiguration(t *testing.T) {
	p := DefaultParams()
	p.Strategy = platoon.CD
	a := MustBuild(p)
	if !strings.Contains(a.Model.Name(), "CD") || !strings.Contains(a.Model.Name(), "n=10") {
		t.Fatalf("model name %q should encode n and strategy", a.Model.Name())
	}
}

func TestFailureAndManeuverStateTransitions(t *testing.T) {
	// White-box check of the escalation mechanics on a hand-driven marking.
	p := DefaultParams()
	p.N = 2
	a := MustBuild(p)
	mk := a.Model.InitialMarking()

	// Vehicle 1 suffers FM6 (class C): governed by TIE-N.
	a.applyFailure(mk, 1, platoon.FM6)
	if a.FailureMode(mk, 1) != platoon.FM6 || a.ActiveManeuver(mk, 1) != platoon.TIEN {
		t.Fatalf("after FM6: fm=%v man=%v", a.FailureMode(mk, 1), a.ActiveManeuver(mk, 1))
	}
	nA, nB, nC := a.ActiveFailures(mk)
	if nA != 0 || nB != 0 || nC != 1 {
		t.Fatalf("counters %d/%d/%d after one class C failure", nA, nB, nC)
	}

	// Vehicle 2 suffers FM3 (class A1 -> GS). Vehicle 1's pending request
	// is not retroactively changed.
	a.applyFailure(mk, 2, platoon.FM3)
	if a.ActiveManeuver(mk, 2) != platoon.GS {
		t.Fatalf("vehicle 2 maneuver %v, want GS", a.ActiveManeuver(mk, 2))
	}

	// Vehicle 3 now suffers FM6; the refusal rule escalates its requested
	// maneuver to at least GS's priority level, but the failure mode — and
	// hence its severity class — stays FM6/class C.
	a.applyFailure(mk, 3, platoon.FM6)
	if got := a.ActiveManeuver(mk, 3); got.PriorityLevel() < platoon.GS.PriorityLevel() {
		t.Fatalf("refusal rule did not escalate vehicle 3's maneuver: %v", got)
	}
	if a.FailureMode(mk, 3) != platoon.FM6 {
		t.Fatalf("refusal must not change the failure mode, got %v", a.FailureMode(mk, 3))
	}
	if nA, _, nC := a.ActiveFailures(mk); nA != 1 || nC != 2 {
		t.Fatalf("counters A=%d C=%d; refusal escalation must not add class A", nA, nC)
	}

	// Maneuver failure escalates along the chain of Figure 2.
	before := a.FailureMode(mk, 2)
	a.escalateAfterFailure(mk, 2)
	after := a.FailureMode(mk, 2)
	wantNext, _ := before.Escalate()
	if after != wantNext {
		t.Fatalf("escalation %v -> %v, want %v", before, after, wantNext)
	}

	// Drive vehicle 2 to FM1 and fail its Aided Stop: v_KO, free agent.
	for a.FailureMode(mk, 2) != platoon.FM1 {
		a.escalateAfterFailure(mk, 2)
	}
	a.escalateAfterFailure(mk, 2)
	if a.FailureMode(mk, 2) != 0 || mk.Tokens(a.inSys[2]) != 0 {
		t.Fatal("AS failure must remove the vehicle as a free agent")
	}
	if _, vKO, _ := a.Outcomes(mk); vKO != 1 {
		t.Fatalf("v_KO counter %d, want 1", vKO)
	}
	if err := a.CheckInvariants(mk); err != nil {
		t.Fatal(err)
	}
}

func TestManeuverSuccessProbability(t *testing.T) {
	p := DefaultParams()
	p.N = 3
	p.ManeuverBaseFailure = 0.1
	p.ParticipantFailure = 0
	p.DegradedPenalty = 0.5
	a := MustBuild(p)
	mk := a.Model.InitialMarking()

	// Vehicle 1 degraded, all neighbours healthy: success = 1 - base.
	a.applyFailure(mk, 1, platoon.FM5) // TIE: participants 0 (ahead) and 2 (behind)
	if got := a.maneuverSuccessProb(mk, 1); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("success prob %v, want 0.9", got)
	}
	// Degrade the vehicle behind: one degraded participant halves it.
	a.applyFailure(mk, 2, platoon.FM6)
	if got := a.maneuverSuccessProb(mk, 1); math.Abs(got-0.45) > 1e-12 {
		t.Fatalf("success prob %v, want 0.45", got)
	}
	// Degrade the vehicle ahead too.
	a.applyFailure(mk, 0, platoon.FM6)
	if got := a.maneuverSuccessProb(mk, 1); math.Abs(got-0.225) > 1e-12 {
		t.Fatalf("success prob %v, want 0.225", got)
	}
}

func TestManeuverSuccessParticipantFailure(t *testing.T) {
	p := DefaultParams()
	p.N = 3
	p.ManeuverBaseFailure = 0
	p.ParticipantFailure = 0.1
	p.DegradedPenalty = 1
	a := MustBuild(p)
	mk := a.Model.InitialMarking()

	// TIE by the tail vehicle of platoon 1 (members 0,1,2): only the
	// vehicle ahead participates under DD.
	a.applyFailure(mk, 2, platoon.FM5)
	if got := a.maneuverSuccessProb(mk, 2); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("success prob %v, want 0.9^1", got)
	}

	// Centralized inter routes the exit through both platoon leaders:
	// three participants (vehicle ahead, own leader, neighbour leader).
	p.Strategy = platoon.CD
	a2 := MustBuild(p)
	mk2 := a2.Model.InitialMarking()
	a2.applyFailure(mk2, 2, platoon.FM5)
	if got := a2.maneuverSuccessProb(mk2, 2); math.Abs(got-0.729) > 1e-12 {
		t.Fatalf("success prob %v, want 0.9^3 = 0.729", got)
	}
}

func BenchmarkTrajectoryDefaultParams(b *testing.B) {
	p := DefaultParams()
	p.Lambda = 1e-5
	a := MustBuild(p)
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 10, Stop: a.Unsafe})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnsafetyBreakdownPartitionsTotal(t *testing.T) {
	p := DefaultParams()
	p.N = 6
	p.Lambda = 0.02
	a := MustBuild(p)
	bd, err := a.UnsafetyBreakdown(8, EvalOptions{Seed: 21, MaxBatches: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total.Point <= 0 {
		t.Fatal("expected positive unsafety at lambda=0.02")
	}
	sum := 0.0
	for _, s := range []platoon.Situation{platoon.ST1, platoon.ST2, platoon.ST3} {
		iv, ok := bd.BySituation[s]
		if !ok {
			t.Fatalf("missing situation %v in breakdown", s)
		}
		if iv.Point < 0 {
			t.Fatalf("negative contribution for %v: %v", s, iv.Point)
		}
		sum += iv.Point
	}
	if math.Abs(sum-bd.Total.Point) > 1e-12 {
		t.Fatalf("situation contributions %v do not sum to total %v", sum, bd.Total.Point)
	}
}

func TestAblationEscalationDisabledIsSafer(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo statistical check; skipped under -short (race CI)")
	}
	// Without the Figure 2 degradation chain, class B/C failures can never
	// turn into class A, so the unsafety must drop.
	run := func(disable bool) float64 {
		p := DefaultParams()
		p.Lambda = 0.02
		p.DisableEscalation = disable
		a := MustBuild(p)
		iv, err := a.Unsafety(8, EvalOptions{Seed: 22, MaxBatches: 8000})
		if err != nil {
			t.Fatal(err)
		}
		return iv.Point
	}
	full, ablated := run(false), run(true)
	if !(ablated < full) {
		t.Fatalf("escalation ablation did not reduce unsafety: %v vs %v", ablated, full)
	}
}

func TestAblationRefusalDisabledStillConsistent(t *testing.T) {
	// The refusal rule only changes which maneuver runs; ablating it must
	// keep every structural invariant intact.
	p := DefaultParams()
	p.N = 3
	p.Lambda = 0.2
	p.DisableRefusal = true
	a := MustBuild(p)
	obs := &invariantObserver{t: t, a: a}
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 20, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(23)
	for i := 0; i < 100; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if obs.err != nil {
		t.Fatal(obs.err)
	}
	// And with refusal ablated, a failure during a class-A maneuver keeps
	// its natural maneuver.
	mk := a.Model.InitialMarking()
	a.applyFailure(mk, 1, platoon.FM3) // GS running
	a.applyFailure(mk, 2, platoon.FM6)
	if got := a.ActiveManeuver(mk, 2); got != platoon.TIEN {
		t.Fatalf("refusal-ablated maneuver %v, want TIE-N", got)
	}
}

func TestCausePlaceConsistency(t *testing.T) {
	p := DefaultParams()
	p.N = 2
	a := MustBuild(p)
	mk := a.Model.InitialMarking()
	if a.Cause(mk) != platoon.SituationNone {
		t.Fatal("initial cause must be none")
	}
	// Drive two vehicles to class A directly: ST1.
	a.applyFailure(mk, 0, platoon.FM1)
	a.applyFailure(mk, 1, platoon.FM2)
	// Fire the severity detection via a real runner step: use the
	// instantaneous closure by checking catastrophic directly.
	if !platoon.Catastrophic(a.ActiveFailures(mk)) {
		t.Fatal("two class-A failures must be catastrophic")
	}
}

func TestPhasedManeuversInvariants(t *testing.T) {
	p := DefaultParams()
	p.N = 3
	p.Lambda = 0.2
	p.PhasedManeuvers = true
	a := MustBuild(p)
	obs := &invariantObserver{t: t, a: a}
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 20, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(31)
	for i := 0; i < 150; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if obs.err != nil {
		t.Fatal(obs.err)
	}
}

func TestPhasedManeuversStructure(t *testing.T) {
	p := DefaultParams()
	p.PhasedManeuvers = true
	a := MustBuild(p)
	// One extra "coordinate" activity per vehicle.
	want := 2*p.N*9 + 5
	if got := a.Model.NumTimed(); got != want {
		t.Fatalf("phased model has %d timed activities, want %d", got, want)
	}
	if a.Model.TimedIndex("one_vehicle[0].coordinate") < 0 {
		t.Fatal("missing coordinate activity")
	}
	// Non-phased models must not have it.
	a2 := MustBuild(DefaultParams())
	if a2.Model.TimedIndex("one_vehicle[0].coordinate") >= 0 {
		t.Fatal("single-phase model must not contain coordinate activities")
	}
}

func TestPhasedManeuversValidation(t *testing.T) {
	p := DefaultParams()
	p.PhasedManeuvers = true
	p.CoordinationRate = 0
	if err := p.Validate(); err == nil {
		t.Fatal("expected CoordinationRate validation error")
	}
}

// TestPhasedExactCTMCCrossCheck validates the two-phase maneuver protocol
// against the exact solver on a reduced configuration.
func TestPhasedExactCTMCCrossCheck(t *testing.T) {
	p := DefaultParams()
	p.N = 1
	p.Lambda = 0.02
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	p.TrackOutcomes = false
	p.PhasedManeuvers = true
	a := MustBuild(p)

	g, err := ctmc.Explore(a.Model, ctmc.ExploreOptions{Absorb: a.Unsafe, MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 8.0
	exact, err := g.TransientProbability(horizon, a.Unsafe)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 {
		t.Fatal("phased reduced model has zero exact unsafety")
	}
	iv, err := a.Unsafety(horizon, EvalOptions{Seed: 32, MaxBatches: 60000})
	if err != nil {
		t.Fatal(err)
	}
	se := iv.HalfWidth() / 1.96
	if math.Abs(iv.Point-exact) > 5*se+1e-12 {
		t.Fatalf("phased simulated %v vs exact %v (se %v)", iv.Point, exact, se)
	}
}

func TestPhasedSlowerCoordinationIsLessSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo statistical check; skipped under -short (race CI)")
	}
	// Slower coordination keeps failures active longer, so unsafety rises.
	run := func(coordRate float64) float64 {
		p := DefaultParams()
		p.Lambda = 0.01
		p.PhasedManeuvers = true
		p.CoordinationRate = coordRate
		a := MustBuild(p)
		iv, err := a.Unsafety(8, EvalOptions{Seed: 33, MaxBatches: 6000})
		if err != nil {
			t.Fatal(err)
		}
		return iv.Point
	}
	fast, slow := run(120), run(6) // 30 s vs 10 min coordination
	if !(slow > fast) {
		t.Fatalf("slow coordination %v not above fast %v", slow, fast)
	}
}

// TestGeneralRunnerAgreesOnAHSModel executes the real AHS model (which is
// exponential-only) under the event-queue executor and checks both the
// structural invariants and statistical agreement with the race executor.
func TestGeneralRunnerAgreesOnAHSModel(t *testing.T) {
	p := DefaultParams()
	p.N = 3
	p.Lambda = 0.05
	a := MustBuild(p)
	const horizon = 10.0
	const batches = 4000

	estimate := func(run func(stream *rng.Stream) (sim.Result, error)) float64 {
		src := rng.NewSource(61)
		hits := 0
		for i := 0; i < batches; i++ {
			res, err := run(src.Stream(uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stopped {
				hits++
			}
		}
		return float64(hits) / batches
	}

	race, err := sim.NewRunner(a.Model, sim.Options{MaxTime: horizon, Stop: a.Unsafe})
	if err != nil {
		t.Fatal(err)
	}
	pRace := estimate(func(s *rng.Stream) (sim.Result, error) { return race.Run(s) })

	obs := &invariantObserver{t: t, a: a}
	general, err := sim.NewGeneralRunner(a.Model, sim.Options{MaxTime: horizon, Stop: a.Unsafe, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	pGen := estimate(func(s *rng.Stream) (sim.Result, error) { return general.Run(s) })
	if obs.err != nil {
		t.Fatal(obs.err)
	}

	// Binomial 5-sigma agreement.
	se := math.Sqrt(pRace*(1-pRace)/batches + pGen*(1-pGen)/batches)
	if math.Abs(pRace-pGen) > 5*se+1e-9 {
		t.Fatalf("executors disagree on AHS unsafety: race %v vs event-queue %v (se %v)", pRace, pGen, se)
	}
	if pRace == 0 {
		t.Fatal("test setup: no unsafety observed at lambda=0.05")
	}
}

func TestMultiLaneStructure(t *testing.T) {
	p := DefaultParams()
	p.N = 4
	p.Lanes = 3
	a := MustBuild(p)
	if a.Slots() != 12 || a.Lanes() != 3 {
		t.Fatalf("slots %d lanes %d", a.Slots(), a.Lanes())
	}
	mk := a.Model.InitialMarking()
	sizes := a.LaneSizes(mk)
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 4 {
		t.Fatalf("initial lane sizes %v", sizes)
	}
	if a.VehiclesInSystem(mk) != 12 {
		t.Fatalf("initial vehicles %d", a.VehiclesInSystem(mk))
	}
	// Dynamicity: 1 join + 3 leaves + 4 changes (two per adjacent pair).
	for _, name := range []string{
		"dynamicity.join", "dynamicity.leave1", "dynamicity.leave2",
		"dynamicity.leave3", "dynamicity.ch1", "dynamicity.ch2",
		"dynamicity.ch3", "dynamicity.ch4",
	} {
		if a.Model.TimedIndex(name) < 0 {
			t.Errorf("missing activity %q", name)
		}
	}
	wantTimed := 12*8 + 1 + 3 + 4
	if got := a.Model.NumTimed(); got != wantTimed {
		t.Fatalf("timed activities %d, want %d", got, wantTimed)
	}
	if err := a.CheckInvariants(mk); err != nil {
		t.Fatal(err)
	}
}

func TestMultiLaneInvariantsAlongTrajectories(t *testing.T) {
	p := DefaultParams()
	p.N = 3
	p.Lanes = 3
	p.Lambda = 0.1
	a := MustBuild(p)
	obs := &invariantObserver{t: t, a: a}
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 25, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(71)
	for i := 0; i < 200; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			t.Fatal(err)
		}
		if obs.err != nil {
			t.FailNow()
		}
	}
}

func TestMultiLaneTransitHopsTowardsExit(t *testing.T) {
	// A lane-3 leaver must hop 3 -> 2 -> 1 -> out, visible as extra
	// pass-through stages. White-box: drive the effects directly.
	p := DefaultParams()
	p.N = 2
	p.Lanes = 3
	a := MustBuild(p)
	mk := a.Model.InitialMarking()
	// Vehicle 4 sits in lane 2 (0-based). Move it down via the leave3
	// activity's effect: emulate by firing the activity through a runner
	// instead; here we verify laneOf bookkeeping after manual moves.
	if got := a.laneOf(mk, 4); got != 2 {
		t.Fatalf("vehicle 4 in lane %d, want 2", got)
	}
	if got := a.laneOf(mk, 0); got != 0 {
		t.Fatalf("vehicle 0 in lane %d, want 0", got)
	}
	a.removeVehicle(mk, 4)
	if got := a.laneOf(mk, 4); got != -1 {
		t.Fatalf("removed vehicle still in lane %d", got)
	}
	if err := a.CheckInvariants(mk); err != nil {
		t.Fatal(err)
	}
}

func TestMultiLaneUnsafetyGrowsWithLanes(t *testing.T) {
	// More lanes = more vehicles in one coordination domain = less safe.
	run := func(lanes int) float64 {
		p := DefaultParams()
		p.N = 6
		p.Lanes = lanes
		p.Lambda = 0.01
		a := MustBuild(p)
		iv, err := a.Unsafety(6, EvalOptions{Seed: 72, MaxBatches: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return iv.Point
	}
	two, four := run(2), run(4)
	if !(four > 1.5*two) {
		t.Fatalf("4-lane unsafety %v not clearly above 2-lane %v", four, two)
	}
}

func TestSingleLaneDegenerateConfiguration(t *testing.T) {
	// One platoon only: exits have no neighbouring platoon; still sound.
	p := DefaultParams()
	p.N = 4
	p.Lanes = 1
	p.ChangeRate = 0 // no adjacent lane to change into
	a := MustBuild(p)
	obs := &invariantObserver{t: t, a: a}
	r, err := sim.NewRunner(a.Model, sim.Options{MaxTime: 20, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(73)
	p.Lambda = 0.1
	for i := 0; i < 50; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if obs.err != nil {
		t.FailNow()
	}
}

// TestMultiLaneExactCTMCCrossCheck anchors the three-lane generalization
// against the exact solver.
func TestMultiLaneExactCTMCCrossCheck(t *testing.T) {
	p := DefaultParams()
	p.N = 1
	p.Lanes = 3
	p.Lambda = 0.02
	p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	p.TrackOutcomes = false
	a := MustBuild(p)

	g, err := ctmc.Explore(a.Model, ctmc.ExploreOptions{Absorb: a.Unsafe, MaxStates: 500000})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 6.0
	exact, err := g.TransientProbability(horizon, a.Unsafe)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 {
		t.Fatal("three-lane reduced model has zero exact unsafety")
	}
	iv, err := a.Unsafety(horizon, EvalOptions{Seed: 74, MaxBatches: 60000})
	if err != nil {
		t.Fatal(err)
	}
	se := iv.HalfWidth() / 1.96
	if math.Abs(iv.Point-exact) > 5*se+1e-12 {
		t.Fatalf("simulated %v vs exact %v (se %v)", iv.Point, exact, se)
	}
}
