package core

import (
	"strings"
	"testing"

	"ahs/internal/telemetry"
)

// TestUnsafetyCurveTelemetry runs a small, failure-heavy evaluation with a
// SimCollector attached and checks the full event stream lands in the
// registry: trajectories, activity firings, maneuver attempts per recovery
// type, and a scrapeable exposition.
func TestUnsafetyCurveTelemetry(t *testing.T) {
	p := DefaultParams()
	p.N = 2
	p.Lambda = 0.05 // frequent failures → maneuvers fire within the horizon
	a, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	col := telemetry.NewSimCollector(reg, p.Strategy.String(), nil)
	const batches = 200
	if _, err := a.UnsafetyCurve(EvalOptions{
		Times:      []float64{5, 10},
		Seed:       1,
		MaxBatches: batches,
		Workers:    2,
		Telemetry:  col,
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Instrument(nil)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	wantBatches := `ahs_sim_trajectories_total{strategy="DD"} 200`
	if !strings.Contains(out, wantBatches) {
		t.Errorf("exposition missing %q", wantBatches)
	}
	for _, fam := range []string{
		"ahs_sim_activity_firings_total",
		"ahs_sim_maneuver_attempts_total",
		"ahs_sim_time_to_ko_hours_bucket",
		"ahs_sim_trajectory_steps_count",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing family %s:\n%s", fam, out)
		}
	}
	// At λ=0.05/hr over 10h with 4 vehicles, essentially every trajectory
	// sees failures, so recovery maneuvers must have been attempted and
	// counted under a Table 1 abbreviation.
	if !strings.Contains(out, `ahs_sim_maneuver_attempts_total{strategy="DD",maneuver=`) {
		t.Errorf("no maneuver attempts recorded:\n%s", out)
	}
}
