package core

import (
	"fmt"
	"math"

	"ahs/internal/mc"
	"ahs/internal/san"
	"ahs/internal/sim"
)

// OccupancyCurve estimates the expected number of vehicles on the highway
// over the time grid — the population measure behind §4.3's load analysis.
// Occupancy is not rare, so the estimate is naive (FailureBias ignored) and
// trajectories run past KO_total (the highway keeps operating around a
// catastrophe site in the model's bookkeeping).
func (a *AHS) OccupancyCurve(opts EvalOptions) (*mc.Curve, error) {
	if len(opts.Times) == 0 {
		return nil, fmt.Errorf("core: empty time grid")
	}
	maxBatches := opts.MaxBatches
	if maxBatches == 0 {
		maxBatches = 10_000
	}
	job := mc.Job{
		Model:      a.Model,
		Sim:        sim.Options{MaxTime: opts.Times[len(opts.Times)-1]},
		Times:      opts.Times,
		Value:      func(mk *san.Marking) float64 { return float64(a.VehiclesInSystem(mk)) },
		Seed:       opts.Seed,
		StopRule:   opts.StopRule,
		MaxBatches: maxBatches,
		CheckEvery: opts.CheckEvery,
		Workers:    opts.Workers,
	}
	return mc.EstimateCurve(job)
}

// Sensitivity is one row of a sensitivity analysis: the elasticity
// d ln S / d ln θ of the unsafety with respect to parameter θ, estimated by
// a central finite difference on a relative perturbation with common
// random numbers.
type Sensitivity struct {
	// Parameter names the perturbed quantity.
	Parameter string
	// Base is the unperturbed parameter value.
	Base float64
	// SLow and SHigh are the unsafety estimates at (1-rel)·Base and
	// (1+rel)·Base.
	SLow, SHigh float64
	// Elasticity is (ln SHigh − ln SLow) / (ln θHigh − ln θLow); for a
	// power-law dependence S ∝ θ^k it recovers k.
	Elasticity float64
}

// sensitivityTarget is one perturbable parameter.
type sensitivityTarget struct {
	name string
	get  func(*Params) float64
	set  func(*Params, float64)
}

func sensitivityTargets() []sensitivityTarget {
	return []sensitivityTarget{
		{"lambda", func(p *Params) float64 { return p.Lambda }, func(p *Params, v float64) { p.Lambda = v }},
		{"join_rate", func(p *Params) float64 { return p.JoinRate }, func(p *Params, v float64) { p.JoinRate = v }},
		{"leave_rate", func(p *Params) float64 { return p.LeaveRate }, func(p *Params, v float64) { p.LeaveRate = v }},
		{"change_rate", func(p *Params) float64 { return p.ChangeRate }, func(p *Params, v float64) { p.ChangeRate = v }},
		{"maneuver_base_failure", func(p *Params) float64 { return p.ManeuverBaseFailure }, func(p *Params, v float64) { p.ManeuverBaseFailure = v }},
		{"participant_failure", func(p *Params) float64 { return p.ParticipantFailure }, func(p *Params, v float64) { p.ParticipantFailure = v }},
	}
}

// SensitivityTable estimates the elasticity of S(t) with respect to each
// positive model parameter, perturbing one at a time by ±rel (e.g. 0.25)
// and reusing the same random streams for every variant so that the
// differences are parameter-driven. Parameters whose base value is zero are
// skipped (no relative perturbation exists).
func SensitivityTable(p Params, t float64, opts EvalOptions, rel float64) ([]Sensitivity, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !(rel > 0) || rel >= 1 {
		return nil, fmt.Errorf("core: relative perturbation %v outside (0,1)", rel)
	}
	estimate := func(variant Params) (float64, error) {
		sys, err := Build(variant)
		if err != nil {
			return 0, err
		}
		o := opts
		if o.FailureBias == 0 {
			o.FailureBias = sys.SuggestedFailureBias(t)
		}
		iv, err := sys.Unsafety(t, o)
		if err != nil {
			return 0, err
		}
		return iv.Point, nil
	}

	var out []Sensitivity
	for _, target := range sensitivityTargets() {
		base := target.get(&p)
		if base == 0 {
			continue
		}
		lowP, highP := p, p
		target.set(&lowP, base*(1-rel))
		target.set(&highP, base*(1+rel))
		sLow, err := estimate(lowP)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity %s low: %w", target.name, err)
		}
		sHigh, err := estimate(highP)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity %s high: %w", target.name, err)
		}
		row := Sensitivity{Parameter: target.name, Base: base, SLow: sLow, SHigh: sHigh}
		if sLow > 0 && sHigh > 0 {
			row.Elasticity = (math.Log(sHigh) - math.Log(sLow)) /
				(math.Log(base*(1+rel)) - math.Log(base*(1-rel)))
		} else {
			row.Elasticity = math.NaN()
		}
		out = append(out, row)
	}
	return out, nil
}
