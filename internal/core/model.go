package core

import (
	"fmt"
	"math"

	"ahs/internal/platoon"
	"ahs/internal/san"
	"ahs/internal/telemetry"
)

// Build constructs the composed SAN model of Figure 9: Lanes·N replicas of
// the One_vehicle submodel joined with the Severity, Dynamicity and
// Configuration submodels through shared places.
func Build(p Params) (*AHS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &AHS{Params: p, slots: p.Lanes * p.N}
	b := san.NewBuilder(fmt.Sprintf("ahs(n=%d,lanes=%d,strategy=%s)", p.N, p.Lanes, p.Strategy))

	a.buildConfiguration(b)
	a.buildSeverity(b)
	a.buildOneVehicleReplicas(b)
	a.buildDynamicity(b)

	model, err := b.Build()
	if err != nil {
		return nil, err
	}
	a.Model = model
	return a, nil
}

// MustBuild is Build for known-valid parameters; it panics on error.
func MustBuild(p Params) *AHS {
	a, err := Build(p)
	if err != nil {
		panic(err)
	}
	return a
}

// buildConfiguration realises the Configuration submodel (Figure 8): it
// creates the shared platoon and pool places and assigns the initial
// configuration — every platoon full, with lane k holding vehicles
// k·N .. k·N+N-1. (In Möbius this initialisation runs as instantaneous
// id_trigger firings at time zero; building it into the initial marking is
// equivalent and keeps the state space free of start-up transients.)
func (a *AHS) buildConfiguration(b *san.Builder) {
	n := a.Params.N
	a.lanes = make([]san.ExtPlaceID, a.Params.Lanes)
	for k := range a.lanes {
		members := make([]int, n)
		for i := 0; i < n; i++ {
			members[i] = k*n + i
		}
		a.lanes[k] = b.ExtPlace(fmt.Sprintf("platoon%d", k+1), members)
	}
	a.out = b.Place("OUT", 0)

	a.fm = make([]san.PlaceID, a.slots)
	a.man = make([]san.PlaceID, a.slots)
	a.phase = make([]san.PlaceID, a.slots)
	a.inSys = make([]san.PlaceID, a.slots)
	a.transit = make([]san.PlaceID, a.slots)
	for i := 0; i < a.slots; i++ {
		scope := b.Scope(fmt.Sprintf("vehicle[%d]", i))
		a.fm[i] = scope.Place("fm", 0)
		a.man[i] = scope.Place("maneuver", 0)
		a.phase[i] = scope.Place("phase", 0)
		a.inSys[i] = scope.Place("in_system", 1)
		a.transit[i] = scope.Place("transit", 0)
	}
}

// buildSeverity realises the Severity submodel (Figure 6): shared class
// counters and the instantaneous to_KO activity marking KO_total when the
// active failure combination matches a catastrophic situation of Table 2.
func (a *AHS) buildSeverity(b *san.Builder) {
	sb := b.Scope("severity")
	a.classA = sb.Place("class_A", 0)
	a.classB = sb.Place("class_B", 0)
	a.classC = sb.Place("class_C", 0)
	a.koTotal = sb.Place("KO_total", 0)
	a.koCause = sb.Place("KO_cause", 0)
	if a.Params.TrackOutcomes {
		a.vOK = sb.Place("v_OK", 0)
		a.vKO = sb.Place("v_KO", 0)
	}
	sb.Instant(san.InstantActivity{
		Name: "to_KO",
		Enabled: func(mk *san.Marking) bool {
			if mk.Tokens(a.koTotal) > 0 {
				return false
			}
			return platoon.Catastrophic(a.ActiveFailures(mk))
		},
		Input: func(mk *san.Marking) {
			mk.SetTokens(a.koTotal, 1)
			mk.SetTokens(a.koCause, int(platoon.ClassifySituation(a.ActiveFailures(mk))))
		},
	})
}

// buildOneVehicleReplicas realises the Lanes·N One_vehicle replicas
// (Figure 5):
// per vehicle, six failure-mode activities L1..L6 and one maneuver-execution
// activity whose success depends on the coordination strategy's participant
// set.
func (a *AHS) buildOneVehicleReplicas(b *san.Builder) {
	lambda := a.Params.Lambda
	b.Rep("one_vehicle", a.slots, func(rb *san.Builder, i int) {
		for _, fmode := range platoon.AllFailureModes() {
			fmode := fmode
			a.failureActivities = append(a.failureActivities,
				fmt.Sprintf("one_vehicle[%d].L%d", i, int(fmode)))
			rb.Timed(san.TimedActivity{
				Name: fmt.Sprintf("L%d", int(fmode)),
				Enabled: func(mk *san.Marking) bool {
					if mk.Tokens(a.inSys[i]) == 0 {
						return false
					}
					// A mode no more severe than the vehicle's governing
					// one is masked: the higher-priority recovery already
					// in progress subsumes it (§2.1.1).
					cur := platoon.FailureMode(mk.Tokens(a.fm[i]))
					return cur == 0 || fmode.Severity() > cur.Severity()
				},
				Rate: san.ConstRate(lambda * fmode.RateMultiplier()),
				Input: func(mk *san.Marking) {
					a.applyFailure(mk, i, fmode)
				},
			})
		}
		if a.Params.PhasedManeuvers {
			// Coordination phase: gather the participants; its success
			// carries the communication part of the failure model.
			rb.Timed(san.TimedActivity{
				Name: "coordinate",
				Enabled: func(mk *san.Marking) bool {
					return mk.Tokens(a.phase[i]) == 1
				},
				Rate: san.ConstRate(a.Params.CoordinationRate),
				Cases: []san.Case{
					{
						Weight: func(mk *san.Marking) float64 { return a.coordinationSuccessProb(mk, i) },
						Output: func(mk *san.Marking) { mk.SetTokens(a.phase[i], 2) },
					},
					{
						Weight: func(mk *san.Marking) float64 { return 1 - a.coordinationSuccessProb(mk, i) },
						Output: func(mk *san.Marking) { a.escalateAfterFailure(mk, i) },
					},
				},
			})
		}
		rb.Timed(san.TimedActivity{
			Name: "maneuver",
			Enabled: func(mk *san.Marking) bool {
				return mk.Tokens(a.phase[i]) == 2
			},
			Rate: func(mk *san.Marking) float64 {
				return a.Params.ManeuverRates[mk.Tokens(a.man[i])]
			},
			Cases: []san.Case{
				{ // success: the vehicle exits the highway safely (v_OK)
					Weight: func(mk *san.Marking) float64 { return a.maneuverSuccessProb(mk, i) },
					Output: func(mk *san.Marking) {
						// Read the maneuver before removeVehicle clears it.
						if s := a.tsink(); s != nil {
							s.Count(telemetry.MetricManeuverAttempts, //ahsvet:ignore locklabel maneuver names are the closed platoon.AllManeuvers set
								platoon.Maneuver(mk.Tokens(a.man[i])).String())
						}
						if a.Params.TrackOutcomes {
							mk.Add(a.vOK, 1)
						}
						a.removeVehicle(mk, i)
					},
				},
				{ // failure: escalate along the chain of Figure 2
					Weight: func(mk *san.Marking) float64 { return 1 - a.maneuverSuccessProb(mk, i) },
					Output: func(mk *san.Marking) {
						if s := a.tsink(); s != nil {
							m := platoon.Maneuver(mk.Tokens(a.man[i])).String()
							s.Count(telemetry.MetricManeuverAttempts, m) //ahsvet:ignore locklabel maneuver names are the closed platoon.AllManeuvers set
							s.Count(telemetry.MetricManeuverFailures, m) //ahsvet:ignore locklabel maneuver names are the closed platoon.AllManeuvers set
						}
						a.escalateAfterFailure(mk, i)
					},
				},
			},
		})
	})
}

// buildDynamicity realises the Dynamicity submodel (Figure 7): voluntary
// join and leave of vehicles and platoon changes. Activities with zero rate
// are omitted, which lets reduced configurations (for exact CTMC solution)
// switch dynamics off entirely.
func (a *AHS) buildDynamicity(b *san.Builder) {
	db := b.Scope("dynamicity")
	n := a.Params.N

	hasSpace := func(pl san.ExtPlaceID) san.Predicate {
		return func(mk *san.Marking) bool { return mk.ExtLen(pl) < n }
	}

	if a.Params.JoinRate > 0 {
		// Join: a waiting vehicle enters the highway and joins one of the
		// platoons with space, chosen uniformly (the instantaneous
		// activity JP of Figure 7, with its 50/50 cases, folded into the
		// cases and generalised to any lane count).
		joinTo := func(pl san.ExtPlaceID) san.Effect {
			return func(mk *san.Marking) {
				slot := a.freeSlot(mk)
				mk.ExtAppend(pl, slot)
				mk.SetTokens(a.inSys[slot], 1)
				mk.Add(a.out, -1)
			}
		}
		anySpace := make([]san.Predicate, len(a.lanes))
		cases := make([]san.Case, len(a.lanes))
		for k, lane := range a.lanes {
			anySpace[k] = hasSpace(lane)
			cases[k] = san.Case{Weight: boolWeight(hasSpace(lane)), Output: joinTo(lane)}
		}
		db.Timed(san.TimedActivity{
			Name: "join",
			Enabled: san.AllOf(
				san.HasTokens(a.out, 1),
				san.AnyOf(anySpace...),
			),
			Rate:  san.ConstRate(a.Params.JoinRate),
			Cases: cases,
		})
	}

	if a.Params.LeaveRate > 0 {
		// LeaveRate is the system-level voluntary departure rate (§4.1
		// quotes one "leave rate"), split evenly between the per-lane
		// leave activities of Figure 7 so that ρ = join/leave is a genuine
		// inflow/outflow load factor.
		perLaneLeave := a.Params.LeaveRate / float64(len(a.lanes))
		for k, lane := range a.lanes {
			k, lane := k, lane
			if k == 0 {
				// leave1: a lane-0 vehicle exits the highway directly.
				db.Timed(san.TimedActivity{
					Name: "leave1",
					Enabled: func(mk *san.Marking) bool {
						return a.rearLeavable(mk, lane) >= 0
					},
					Rate: san.ConstRate(perLaneLeave),
					Input: func(mk *san.Marking) {
						pos := a.rearLeavable(mk, lane)
						a.removeVehicle(mk, mk.ExtAt(lane, pos))
					},
				})
				continue
			}
			// leaveK (K > 1): the vehicle starts its exit by crossing into
			// the next lane towards the exits, where it stays 3-4 minutes
			// in transit (§4.1) before hopping on.
			below := a.lanes[k-1]
			db.Timed(san.TimedActivity{
				Name: fmt.Sprintf("leave%d", k+1),
				Enabled: func(mk *san.Marking) bool {
					return a.rearLeavable(mk, lane) >= 0 && mk.ExtLen(below) < n
				},
				Rate: san.ConstRate(perLaneLeave),
				Input: func(mk *san.Marking) {
					pos := a.rearLeavable(mk, lane)
					id := mk.ExtAt(lane, pos)
					mk.ExtRemoveAt(lane, pos)
					mk.ExtAppend(below, id)
					mk.SetTokens(a.transit[id], 1)
				},
			})
		}
		// Completion of one pass-through stage: the transiting vehicle
		// exits from lane 0, or hops one more lane towards it.
		b.Rep("transit_exit", a.slots, func(rb *san.Builder, i int) {
			rb.Timed(san.TimedActivity{
				Name: "done",
				Enabled: func(mk *san.Marking) bool {
					if mk.Tokens(a.transit[i]) != 1 || mk.Tokens(a.fm[i]) != 0 {
						return false
					}
					lane := a.laneOf(mk, i)
					return lane == 0 || mk.ExtLen(a.lanes[lane-1]) < n
				},
				Rate: san.ConstRate(a.Params.PassThroughRate),
				Input: func(mk *san.Marking) {
					lane := a.laneOf(mk, i)
					if lane == 0 {
						a.removeVehicle(mk, i)
						return
					}
					pos := mk.ExtIndexOf(a.lanes[lane], i)
					mk.ExtRemoveAt(a.lanes[lane], pos)
					mk.ExtAppend(a.lanes[lane-1], i)
				},
			})
		})
	}

	if a.Params.ChangeRate > 0 {
		change := func(name string, from, to san.ExtPlaceID) {
			db.Timed(san.TimedActivity{
				Name: name,
				Enabled: func(mk *san.Marking) bool {
					return a.rearLeavable(mk, from) >= 0 && mk.ExtLen(to) < n
				},
				Rate: san.ConstRate(a.Params.ChangeRate),
				Input: func(mk *san.Marking) {
					pos := a.rearLeavable(mk, from)
					id := mk.ExtAt(from, pos)
					mk.ExtRemoveAt(from, pos)
					mk.ExtAppend(to, id)
				},
			})
		}
		// ch1/ch2 of Figure 7 between lanes 1 and 2; further adjacent lane
		// pairs continue the numbering.
		idx := 1
		for k := 0; k+1 < len(a.lanes); k++ {
			change(fmt.Sprintf("ch%d", idx), a.lanes[k], a.lanes[k+1])
			idx++
			change(fmt.Sprintf("ch%d", idx), a.lanes[k+1], a.lanes[k])
			idx++
		}
	}
}

// laneOf returns the lane index holding vehicle i, or -1.
func (a *AHS) laneOf(mk *san.Marking, i int) int {
	for k, lane := range a.lanes {
		if mk.ExtIndexOf(lane, i) >= 0 {
			return k
		}
	}
	return -1
}

// boolWeight converts a predicate into a 0/1 case weight.
func boolWeight(p san.Predicate) san.WeightFn {
	return func(mk *san.Marking) float64 {
		if p(mk) {
			return 1
		}
		return 0
	}
}

// freeSlot returns the lowest-index empty vehicle slot. Vehicles are
// statistically exchangeable, so deterministic slot reuse does not bias the
// model and keeps the reachable state space small.
func (a *AHS) freeSlot(mk *san.Marking) int {
	for i := 0; i < a.slots; i++ {
		if mk.Tokens(a.inSys[i]) == 0 {
			return i
		}
	}
	panic("core: join fired with no free slot")
}

// rearLeavable returns the position of the rear-most operational,
// non-transit member of the platoon, or -1. Voluntary moves (leave, change)
// are performed by healthy vehicles from the platoon tail, where splitting
// off is cheapest.
func (a *AHS) rearLeavable(mk *san.Marking, pl san.ExtPlaceID) int {
	for pos := mk.ExtLen(pl) - 1; pos >= 0; pos-- {
		id := mk.ExtAt(pl, pos)
		if mk.Tokens(a.fm[id]) == 0 && mk.Tokens(a.transit[id]) == 0 {
			return pos
		}
	}
	return -1
}

// maxOtherManeuverLevel returns the highest priority level among maneuvers
// active on vehicles other than self (the refusal rule's neighbourhood; in
// the two-platoon system every vehicle shares one coordination domain).
// It returns 0 when the refusal rule is ablated.
func (a *AHS) maxOtherManeuverLevel(mk *san.Marking, self int) int {
	if a.Params.DisableRefusal {
		return 0
	}
	level := 0
	for j := 0; j < a.slots; j++ {
		if j == self {
			continue
		}
		if m := platoon.Maneuver(mk.Tokens(a.man[j])); m != 0 {
			if l := m.PriorityLevel(); l > level {
				level = l
			}
		}
	}
	return level
}

// setMode updates vehicle i's governing failure mode and attempted
// maneuver, keeping the shared severity counters consistent. The severity
// counters track failure modes (as in the paper's Severity submodel), not
// maneuvers: a refusal-escalated maneuver does not change the mode's class.
func (a *AHS) setMode(mk *san.Marking, i int, mode platoon.FailureMode, m platoon.Maneuver) {
	if old := platoon.FailureMode(mk.Tokens(a.fm[i])); old != 0 {
		a.addClass(mk, old.Class(), -1)
	}
	mk.SetTokens(a.fm[i], int(mode))
	if mode == 0 {
		mk.SetTokens(a.man[i], 0)
		mk.SetTokens(a.phase[i], 0)
		return
	}
	a.addClass(mk, mode.Class(), 1)
	mk.SetTokens(a.man[i], int(m))
	if a.Params.PhasedManeuvers {
		mk.SetTokens(a.phase[i], 1)
	} else {
		mk.SetTokens(a.phase[i], 2)
	}
}

func (a *AHS) addClass(mk *san.Marking, c platoon.Class, delta int) {
	switch c {
	case platoon.ClassA:
		mk.Add(a.classA, delta)
	case platoon.ClassB:
		mk.Add(a.classB, delta)
	default:
		mk.Add(a.classC, delta)
	}
}

// applyFailure handles the firing of failure mode fmode on vehicle i: the
// governing mode becomes fmode (the enabling predicate guarantees it is
// more severe than the current one) and the requested maneuver is escalated
// per the refusal rule of §2.1.2 until its priority is at least that of
// every maneuver already executing elsewhere — and at least the maneuver
// the vehicle was already performing.
func (a *AHS) applyFailure(mk *san.Marking, i int, fmode platoon.FailureMode) {
	floor := a.maxOtherManeuverLevel(mk, i)
	if cur := platoon.Maneuver(mk.Tokens(a.man[i])); cur != 0 && cur.PriorityLevel() > floor {
		floor = cur.PriorityLevel()
	}
	a.setMode(mk, i, fmode, platoon.ManeuverForMode(fmode, floor))
}

// escalateAfterFailure handles a failed maneuver attempt (§2.1.2, Figure 2):
// the vehicle evolves to the next more degraded failure mode of the chain
// and attempts that mode's maneuver (refusal-escalated against the current
// neighbourhood). When the failed attempt was the Aided Stop — the highest
// priority maneuver — no recovery remains: the vehicle reaches v_KO and
// leaves the platoons as a free agent.
func (a *AHS) escalateAfterFailure(mk *san.Marking, i int) {
	cur := platoon.FailureMode(mk.Tokens(a.fm[i]))
	man := platoon.Maneuver(mk.Tokens(a.man[i]))
	next, ok := cur.Escalate()
	if man == platoon.AS || !ok {
		if a.Params.TrackOutcomes {
			mk.Add(a.vKO, 1)
		}
		a.removeVehicle(mk, i)
		return
	}
	if a.Params.DisableEscalation {
		return // ablated: retry the same maneuver
	}
	a.setMode(mk, i, next, platoon.ManeuverForMode(next, a.maxOtherManeuverLevel(mk, i)))
}

// removeVehicle takes vehicle i off the highway: out of its platoon, out of
// transit, failure state cleared (with severity counters updated), and its
// slot returned to the OUT pool so a new vehicle can join.
func (a *AHS) removeVehicle(mk *san.Marking, i int) {
	for _, lane := range a.lanes {
		if pos := mk.ExtIndexOf(lane, i); pos >= 0 {
			mk.ExtRemoveAt(lane, pos)
			break
		}
	}
	a.setMode(mk, i, 0, 0)
	mk.SetTokens(a.transit[i], 0)
	mk.SetTokens(a.inSys[i], 0)
	mk.Add(a.out, 1)
}

// maneuverSuccessProb returns the probability that vehicle i's current
// maneuver attempt succeeds:
//
//	(1 - base) · (1 - q)^participants · penalty^degraded
//
// where base is the intrinsic failure probability, q the per-participant
// coordination failure probability and degraded the number of participants
// that are themselves running recovery maneuvers. Both factors are the
// coupling through which the coordination strategy influences safety:
// centralized coordination involves more vehicles per maneuver (§2.2.1), so
// every attempt carries more coordination risk and a nearby degraded
// vehicle is more likely to be needed.
func (a *AHS) maneuverSuccessProb(mk *san.Marking, i int) float64 {
	p := 1 - a.Params.ManeuverBaseFailure
	if !a.Params.PhasedManeuvers {
		// Single-phase model: fold the coordination risk into the
		// execution attempt.
		p *= a.coordinationSuccessProb(mk, i)
	}
	return p
}

// coordinationSuccessProb is the participant-dependent part of the success
// probability: (1-q)^|participants|·penalty^degraded.
func (a *AHS) coordinationSuccessProb(mk *san.Marking, i int) float64 {
	m := platoon.Maneuver(mk.Tokens(a.man[i]))
	parts, err := platoon.Participants(a.View(mk), i, m, a.Params.Strategy)
	if err != nil {
		// Reached only on an internal invariant violation: a maneuver
		// active on a vehicle missing from both platoons.
		panic(fmt.Sprintf("core: participant computation for vehicle %d: %v", i, err))
	}
	degraded := 0
	for _, id := range parts {
		if mk.Tokens(a.fm[id]) != 0 {
			degraded++
		}
	}
	p := 1.0
	if q := a.Params.ParticipantFailure; q > 0 && len(parts) > 0 {
		p = math.Pow(1-q, float64(len(parts)))
	}
	if degraded > 0 {
		p *= math.Pow(a.Params.DegradedPenalty, float64(degraded))
	}
	return p
}
