package core

import (
	"math"
	"testing"
)

func TestOccupancyCurve(t *testing.T) {
	p := DefaultParams()
	p.N = 5
	a := MustBuild(p)
	curve, err := a.OccupancyCurve(EvalOptions{
		Times:      []float64{1, 5, 10},
		Seed:       41,
		MaxBatches: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range curve.Times {
		occ := curve.Mean[i]
		if occ <= 0 || occ > float64(2*p.N) {
			t.Fatalf("occupancy %v at t=%v outside (0, %d]", occ, tp, 2*p.N)
		}
	}
	// With join 12/hr against a system-level leave of 4/hr, the highway
	// stays nearly full.
	if curve.Final() < float64(2*p.N)*0.8 {
		t.Fatalf("occupancy %v suspiciously low for join >> leave", curve.Final())
	}
}

func TestOccupancyCurveDrainsWithoutJoins(t *testing.T) {
	p := DefaultParams()
	p.N = 5
	p.JoinRate = 0
	p.LeaveRate = 12
	a := MustBuild(p)
	curve, err := a.OccupancyCurve(EvalOptions{
		Times:      []float64{0.5, 8},
		Seed:       42,
		MaxBatches: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(curve.Mean[1] < curve.Mean[0]) {
		t.Fatalf("occupancy did not drain: %v", curve.Mean)
	}
}

func TestOccupancyCurveValidation(t *testing.T) {
	a := MustBuild(DefaultParams())
	if _, err := a.OccupancyCurve(EvalOptions{}); err == nil {
		t.Fatal("expected empty-grid error")
	}
}

func TestSensitivityTableLambdaElasticity(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo statistical check; skipped under -short (race CI)")
	}
	// With two-failure catastrophes dominating, S ∝ λ², so the lambda
	// elasticity must be close to 2.
	p := DefaultParams()
	p.Lambda = 1e-4
	rows, err := SensitivityTable(p, 6, EvalOptions{Seed: 43, MaxBatches: 12000}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Sensitivity{}
	for _, r := range rows {
		byName[r.Parameter] = r
	}
	lam, ok := byName["lambda"]
	if !ok {
		t.Fatalf("missing lambda row in %v", rows)
	}
	if lam.SLow >= lam.SHigh {
		t.Fatalf("unsafety not increasing in lambda: %+v", lam)
	}
	if math.Abs(lam.Elasticity-2) > 0.5 {
		t.Fatalf("lambda elasticity %v, want ~2", lam.Elasticity)
	}
	// All six positive parameters are present.
	if len(rows) != 6 {
		t.Fatalf("expected 6 sensitivity rows, got %d", len(rows))
	}
}

func TestSensitivityTableSkipsZeroParams(t *testing.T) {
	p := DefaultParams()
	p.Lambda = 1e-3
	p.ChangeRate = 0
	rows, err := SensitivityTable(p, 2, EvalOptions{Seed: 44, MaxBatches: 500}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Parameter == "change_rate" {
			t.Fatal("zero parameter must be skipped")
		}
	}
}

func TestSensitivityTableValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := SensitivityTable(p, 2, EvalOptions{MaxBatches: 10}, 0); err == nil {
		t.Fatal("expected error for zero rel")
	}
	if _, err := SensitivityTable(p, 2, EvalOptions{MaxBatches: 10}, 1); err == nil {
		t.Fatal("expected error for rel >= 1")
	}
	p.N = 0
	if _, err := SensitivityTable(p, 2, EvalOptions{MaxBatches: 10}, 0.2); err == nil {
		t.Fatal("expected invalid-params error")
	}
}
