// Package core implements the paper's primary contribution: the
// compositional SAN safety model of a two-lane Automated Highway System
// (Section 3) and the evaluation of its unsafety measure S(t) — the
// probability that the AHS has reached one of the catastrophic situations
// of Table 2 by time t (Section 4).
//
// The composed model mirrors Figure 4/Figure 9 of the paper: 2n replicas of
// the One_vehicle submodel joined with the Severity, Dynamicity and
// Configuration submodels through shared places. See model.go for the
// submodels and eval.go for the Monte-Carlo evaluation (naive and
// rare-event importance sampling).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"ahs/internal/platoon"
	"ahs/internal/san"
	"ahs/internal/telemetry"
)

// Params collects every model parameter of §4.1. The zero value is not
// valid; start from DefaultParams.
type Params struct {
	// N is the maximum number of vehicles per platoon; the system holds
	// Lanes·N vehicle slots and starts with every platoon full.
	N int
	// Lanes is the number of highway lanes, one platoon per lane (the
	// paper's case study uses 2; its stated future work extends to more).
	// Lane 0 borders the highway exits: vehicles leaving from lane k > 0
	// pass through each lane below it. Default 2.
	Lanes int
	// Lambda is the base failure rate λ per hour. Failure mode FMi fires
	// at λ·RateMultiplier(FMi) (λ6=4λ … λ1=λ).
	Lambda float64
	// ManeuverRates holds the execution rate (per hour) of each maneuver,
	// indexed by platoon.Maneuver (1..6). The paper uses values between
	// 15/hr and 30/hr (durations of 2–4 minutes).
	ManeuverRates [7]float64
	// JoinRate is the rate at which new vehicles enter the highway while
	// a slot and platoon capacity are available (paper default 12/hr).
	JoinRate float64
	// LeaveRate is the system-level voluntary departure rate (paper
	// default 4/hr), split evenly across the per-lane leave activities.
	// Lane-0 vehicles exit directly; vehicles in outer lanes first pass
	// through each lane between them and the exits (§4.1).
	LeaveRate float64
	// ChangeRate is the platoon-change rate between each adjacent lane
	// pair and direction (the paper's ch1 = ch2 = 6/hr).
	ChangeRate float64
	// PassThroughRate governs each 3–4 minute lane traversal of an
	// exiting vehicle on its way to lane 0 (default 60/3.5 ≈ 17.1/hr).
	PassThroughRate float64
	// ManeuverBaseFailure is the intrinsic per-attempt failure probability
	// of a maneuver with fully operational participants. The paper leaves
	// it implicit; see DESIGN.md §2.
	ManeuverBaseFailure float64
	// ParticipantFailure is the probability that one (operational)
	// participating vehicle fails to play its part in a maneuver —
	// coordination over the ad-hoc network is fallible. Every maneuver's
	// success probability carries a (1-q)^|participants| factor, which is
	// how centralized strategies (larger participant sets, §2.2.1) end up
	// less safe.
	ParticipantFailure float64
	// DegradedPenalty multiplies the maneuver success probability once per
	// degraded participant: success = (1-base)·(1-q)^n·penalty^k. Smaller
	// values couple nearby failures more strongly.
	DegradedPenalty float64
	// Strategy selects the coordination strategy of Table 3.
	Strategy platoon.Strategy
	// TrackOutcomes adds cumulative v_OK / v_KO counter places. They are
	// useful observables in simulation but blow up the state space of
	// exact CTMC solution, so reduced models switch them off.
	TrackOutcomes bool

	// PhasedManeuvers splits every maneuver into the two phases of the
	// PATH atomic-maneuver protocols [15]: a coordination phase, whose
	// success depends on the participants (their number and health — the
	// communication part), followed by an execution phase carrying the
	// intrinsic ManeuverBaseFailure. The single-phase default folds both
	// into one exponential attempt; the phased variant adds the
	// coordination latency and separates the two failure sources.
	PhasedManeuvers bool
	// CoordinationRate is the rate of the coordination phase when
	// PhasedManeuvers is on (default 60/hr, i.e. one minute to gather the
	// participants' acknowledgements).
	CoordinationRate float64

	// DisableRefusal ablates the §2.1.2 refusal rule: requested maneuvers
	// are never escalated against maneuvers active elsewhere. For
	// sensitivity studies of the design choices; see the ablation
	// benchmarks.
	DisableRefusal bool
	// DisableEscalation ablates the Figure 2 degradation chain: a failed
	// maneuver attempt is simply retried instead of degrading the failure
	// mode (a failed Aided Stop still ends in v_KO).
	DisableEscalation bool
}

// DefaultParams returns the parameter set used for Figures 10/11/14 of the
// paper: n=10, λ=1e-5/hr, join 12/hr, leave 4/hr, change 6/hr,
// decentralized/decentralized coordination.
func DefaultParams() Params {
	p := Params{
		N:                   10,
		Lanes:               2,
		Lambda:              1e-5,
		JoinRate:            12,
		LeaveRate:           4,
		ChangeRate:          6,
		PassThroughRate:     60 / 3.5,
		CoordinationRate:    60,
		ManeuverBaseFailure: 0.02,
		ParticipantFailure:  0.02,
		DegradedPenalty:     0.2,
		Strategy:            platoon.DD,
		TrackOutcomes:       true,
	}
	// Maneuver durations between 2 and 4 minutes (§4.1): emergency stops
	// are quickest, assisted/escorted maneuvers slowest.
	p.ManeuverRates[platoon.TIEN] = 30
	p.ManeuverRates[platoon.TIE] = 25
	p.ManeuverRates[platoon.TIEE] = 20
	p.ManeuverRates[platoon.GS] = 20
	p.ManeuverRates[platoon.CS] = 30
	p.ManeuverRates[platoon.AS] = 15
	return p
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	var errs []error
	if p.N < 1 {
		errs = append(errs, fmt.Errorf("core: N must be >= 1, got %d", p.N))
	}
	if p.Lanes < 1 {
		errs = append(errs, fmt.Errorf("core: Lanes must be >= 1, got %d", p.Lanes))
	}
	if !(p.Lambda > 0) {
		errs = append(errs, fmt.Errorf("core: Lambda must be positive, got %v", p.Lambda))
	}
	for _, m := range platoon.AllManeuvers() {
		if !(p.ManeuverRates[m] > 0) {
			errs = append(errs, fmt.Errorf("core: maneuver rate for %v must be positive, got %v", m, p.ManeuverRates[m]))
		}
	}
	if p.JoinRate < 0 || p.LeaveRate < 0 || p.ChangeRate < 0 {
		errs = append(errs, errors.New("core: dynamicity rates must be non-negative"))
	}
	if p.PhasedManeuvers && !(p.CoordinationRate > 0) {
		errs = append(errs, errors.New("core: CoordinationRate must be positive with PhasedManeuvers"))
	}
	if p.LeaveRate > 0 && !(p.PassThroughRate > 0) {
		errs = append(errs, errors.New("core: PassThroughRate must be positive when vehicles leave"))
	}
	if p.ManeuverBaseFailure < 0 || p.ManeuverBaseFailure >= 1 {
		errs = append(errs, fmt.Errorf("core: ManeuverBaseFailure must be in [0,1), got %v", p.ManeuverBaseFailure))
	}
	if p.ParticipantFailure < 0 || p.ParticipantFailure >= 1 {
		errs = append(errs, fmt.Errorf("core: ParticipantFailure must be in [0,1), got %v", p.ParticipantFailure))
	}
	if p.DegradedPenalty < 0 || p.DegradedPenalty > 1 {
		errs = append(errs, fmt.Errorf("core: DegradedPenalty must be in [0,1], got %v", p.DegradedPenalty))
	}
	if p.Strategy.Inter == 0 || p.Strategy.Intra == 0 {
		errs = append(errs, errors.New("core: Strategy must be set (see platoon.DD/DC/CD/CC)"))
	}
	return errors.Join(errs...)
}

// Load returns the system load ρ = join_rate / leave_rate of §4.3.
func (p Params) Load() float64 {
	if p.LeaveRate == 0 {
		return 0
	}
	return p.JoinRate / p.LeaveRate
}

// AHS is the built safety model: the composed SAN of Figure 9 plus handles
// to the shared places needed to define measures.
type AHS struct {
	// Params echoes the construction parameters.
	Params Params
	// Model is the composed SAN.
	Model *san.Model

	slots int // Lanes * N

	// Shared places (Severity and Dynamicity submodels).
	lanes    []san.ExtPlaceID // one ordered platoon per lane
	out      san.PlaceID
	classA   san.PlaceID
	classB   san.PlaceID
	classC   san.PlaceID
	koTotal  san.PlaceID
	koCause  san.PlaceID
	vOK, vKO san.PlaceID // only when TrackOutcomes

	// Per-vehicle places (One_vehicle replicas).
	fm      []san.PlaceID // current failure mode (0 = operational)
	man     []san.PlaceID // current maneuver (0 = none)
	phase   []san.PlaceID // 0 = none, 1 = coordinating, 2 = executing
	inSys   []san.PlaceID // vehicle on the highway
	transit []san.PlaceID // passing through platoon 1 on the way out

	// failureActivities names the L1..L6 activities of every replica, for
	// importance-sampling bias construction.
	failureActivities []string

	// sink is the installed telemetry sink (see Instrument). The maneuver
	// activities consult it through an atomic load on every attempt, so it
	// can be installed or cleared while simulations run.
	sink atomic.Pointer[sinkCell]
}

// sinkCell boxes a telemetry.Sink so atomic.Pointer can hold interface
// values of any concrete type.
type sinkCell struct{ s telemetry.Sink }

// Instrument installs a telemetry sink on the model: every maneuver
// execution reports an attempt — and, when the failure case fires, a
// failure — under the recovery type's Table 1 abbreviation (AS, CS, GS,
// TIE, TIE-E, TIE-N). Passing nil uninstruments the model. The sink must
// be safe for concurrent use; simulation workers report from their own
// goroutines. Evaluations running at the same time on the same AHS share
// whichever sink is installed last.
func (a *AHS) Instrument(s telemetry.Sink) {
	if s == nil {
		a.sink.Store(nil)
		return
	}
	a.sink.Store(&sinkCell{s: s})
}

// tsink returns the installed sink, or nil.
func (a *AHS) tsink() telemetry.Sink {
	if c := a.sink.Load(); c != nil {
		return c.s
	}
	return nil
}

// Slots returns the number of vehicle slots (Lanes·N).
func (a *AHS) Slots() int { return a.slots }

// Lanes returns the number of lanes (platoons).
func (a *AHS) Lanes() int { return len(a.lanes) }

// Unsafe reports whether the marking is in the absorbing unsafe state
// (KO_total marked) — the event whose probability is S(t).
func (a *AHS) Unsafe(mk *san.Marking) bool { return mk.Tokens(a.koTotal) > 0 }

// UnsafetyIndicator is the measured value: 1 in unsafe markings, else 0.
func (a *AHS) UnsafetyIndicator(mk *san.Marking) float64 {
	if a.Unsafe(mk) {
		return 1
	}
	return 0
}

// Cause returns the catastrophic situation of Table 2 that triggered
// KO_total (SituationNone in safe markings).
func (a *AHS) Cause(mk *san.Marking) platoon.Situation {
	return platoon.Situation(mk.Tokens(a.koCause))
}

// ActiveFailures returns the numbers of active class A, B and C failure
// modes in the marking (the shared severity places of Figure 6).
func (a *AHS) ActiveFailures(mk *san.Marking) (nA, nB, nC int) {
	return mk.Tokens(a.classA), mk.Tokens(a.classB), mk.Tokens(a.classC)
}

// VehiclesInSystem returns how many vehicles are currently on the highway.
func (a *AHS) VehiclesInSystem(mk *san.Marking) int {
	n := 0
	for _, p := range a.inSys {
		n += mk.Tokens(p)
	}
	return n
}

// LaneSizes returns the current platoon size of each lane.
func (a *AHS) LaneSizes(mk *san.Marking) []int {
	sizes := make([]int, len(a.lanes))
	for i, lane := range a.lanes {
		sizes[i] = mk.ExtLen(lane)
	}
	return sizes
}

// Outcomes returns the cumulative counts of vehicles that left the highway
// safely after a successful maneuver (v_OK) and of vehicles whose Aided
// Stop failed (v_KO, free agents). It returns ok=false when the model was
// built with TrackOutcomes disabled.
func (a *AHS) Outcomes(mk *san.Marking) (vOK, vKO int, ok bool) {
	if !a.Params.TrackOutcomes {
		return 0, 0, false
	}
	return mk.Tokens(a.vOK), mk.Tokens(a.vKO), true
}

// FailureMode returns vehicle i's governing failure mode (0 when healthy).
func (a *AHS) FailureMode(mk *san.Marking, i int) platoon.FailureMode {
	return platoon.FailureMode(mk.Tokens(a.fm[i]))
}

// ActiveManeuver returns vehicle i's executing maneuver (0 when none).
func (a *AHS) ActiveManeuver(mk *san.Marking, i int) platoon.Maneuver {
	return platoon.Maneuver(mk.Tokens(a.man[i]))
}

// View builds the platoon.View of a marking, used for participant
// computation and exposed for tests and diagnostics.
func (a *AHS) View(mk *san.Marking) platoon.View {
	platoons := make([][]int, len(a.lanes))
	for i, lane := range a.lanes {
		platoons[i] = mk.Ext(lane)
	}
	return platoon.View{
		Platoons: platoons,
		Operational: func(id int) bool {
			return mk.Tokens(a.fm[id]) == 0
		},
	}
}

// CheckInvariants verifies structural invariants of a marking reached
// during execution. It is used heavily by tests:
//
//   - every in-system vehicle appears in exactly one platoon, every
//     out-of-system vehicle in none;
//   - platoon sizes never exceed N;
//   - severity counters match the per-vehicle failure modes;
//   - a vehicle has a maneuver iff it has a failure mode, and the
//     maneuver's priority is at least the mode's natural maneuver priority;
//   - transit vehicles sit in platoon 1.
func (a *AHS) CheckInvariants(mk *san.Marking) error {
	seen := make(map[int]int, a.slots)
	for li, size := range a.LaneSizes(mk) {
		if size > a.Params.N {
			return fmt.Errorf("core: lane %d overflows with %d vehicles (N=%d)", li, size, a.Params.N)
		}
		for _, id := range mk.Ext(a.lanes[li]) {
			seen[id]++
		}
	}
	wantA, wantB, wantC := 0, 0, 0
	for i := 0; i < a.slots; i++ {
		in := mk.Tokens(a.inSys[i]) == 1
		if seen[i] > 1 {
			return fmt.Errorf("core: vehicle %d in two platoons", i)
		}
		if in != (seen[i] == 1) {
			return fmt.Errorf("core: vehicle %d inSys=%v but platoon membership=%d", i, in, seen[i])
		}
		f := platoon.FailureMode(mk.Tokens(a.fm[i]))
		m := platoon.Maneuver(mk.Tokens(a.man[i]))
		if (f == 0) != (m == 0) {
			return fmt.Errorf("core: vehicle %d has fm=%v but maneuver=%v", i, f, m)
		}
		phase := mk.Tokens(a.phase[i])
		switch {
		case m == 0 && phase != 0:
			return fmt.Errorf("core: vehicle %d has phase %d without a maneuver", i, phase)
		case m != 0 && phase != 1 && phase != 2:
			return fmt.Errorf("core: vehicle %d maneuvering with phase %d", i, phase)
		case m != 0 && !a.Params.PhasedManeuvers && phase != 2:
			return fmt.Errorf("core: vehicle %d in coordination phase without PhasedManeuvers", i)
		}
		if f != 0 {
			if !in {
				return fmt.Errorf("core: degraded vehicle %d is not in the system", i)
			}
			if !f.Valid() || !m.Valid() {
				return fmt.Errorf("core: vehicle %d has invalid fm=%d man=%d", i, int(f), int(m))
			}
			if m.PriorityLevel() < f.Maneuver().PriorityLevel() {
				return fmt.Errorf("core: vehicle %d maneuver %v below mode %v's natural maneuver", i, m, f)
			}
			switch f.Class() {
			case platoon.ClassA:
				wantA++
			case platoon.ClassB:
				wantB++
			default:
				wantC++
			}
		}
		if mk.Tokens(a.transit[i]) == 1 && seen[i] != 1 {
			return fmt.Errorf("core: transit vehicle %d not in any lane", i)
		}
	}
	gotA, gotB, gotC := a.ActiveFailures(mk)
	if gotA != wantA || gotB != wantB || gotC != wantC {
		return fmt.Errorf("core: severity counters (%d,%d,%d) != derived (%d,%d,%d)",
			gotA, gotB, gotC, wantA, wantB, wantC)
	}
	if outs := mk.Tokens(a.out); outs != a.slots-len(seen) {
		return fmt.Errorf("core: OUT=%d but %d slots free", outs, a.slots-len(seen))
	}
	cause := a.Cause(mk)
	if a.Unsafe(mk) != (cause != platoon.SituationNone) {
		return fmt.Errorf("core: KO_total=%v inconsistent with cause %v", a.Unsafe(mk), cause)
	}
	return nil
}
