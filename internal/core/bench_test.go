package core

import (
	"testing"

	"ahs/internal/telemetry"
	"ahs/internal/trace"
)

// benchCurve estimates a small unsafety curve on the full composed model —
// the realistic workload behind BenchmarkMCBaseline/Instrumented's
// worst-case micro-model. The failure rate is large so trajectories hit
// maneuvers and catastrophes (exercising every instrumented path) within
// the short horizon.
func benchCurve(b *testing.B, sink telemetry.Sink) {
	p := DefaultParams()
	p.N = 4
	p.Lambda = 0.02
	a, err := Build(p)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Instrument(nil)
	opts := EvalOptions{
		Times:      []float64{1, 2},
		Seed:       42,
		MaxBatches: 100,
		Workers:    1,
		Telemetry:  sink,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.UnsafetyCurve(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnsafetyCurveBaseline is the disabled-telemetry path: the hooks
// compile in but every one is a nil-check branch.
func BenchmarkUnsafetyCurveBaseline(b *testing.B) {
	benchCurve(b, nil)
}

// BenchmarkUnsafetyCurveInstrumented runs the same estimation with a full
// SimCollector attached.
func BenchmarkUnsafetyCurveInstrumented(b *testing.B) {
	reg := telemetry.NewRegistry()
	benchCurve(b, telemetry.NewSimCollector(reg, "DD", trace.CollapseName))
}
