package core

import (
	"fmt"

	"ahs/internal/platoon"
)

// WithStrategy returns a copy of p with the coordination strategy replaced.
// It is the canonical way to derive the four Table 3 scenarios from one base
// parameter set: every strategy variant then flows through the single
// audited Build path (and is what the model linter runs against).
func (p Params) WithStrategy(s platoon.Strategy) Params {
	p.Strategy = s
	return p
}

// WithPlatoonSize returns a copy of p with the maximum platoon size replaced.
func (p Params) WithPlatoonSize(n int) Params {
	p.N = n
	return p
}

// BuildVariants builds one system per strategy from a shared base parameter
// set. Results are in the order of strategies.
func BuildVariants(base Params, strategies []platoon.Strategy) ([]*AHS, error) {
	out := make([]*AHS, 0, len(strategies))
	for _, s := range strategies {
		a, err := Build(base.WithStrategy(s))
		if err != nil {
			return nil, fmt.Errorf("core: building %s variant: %w", s, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// GoalPlaces returns the names of the places whose reachability defines the
// model's measures: the absorbing KO_total place behind S(t). Model linting
// asserts these are reachable.
func (a *AHS) GoalPlaces() []string {
	return []string{a.Model.PlaceName(a.koTotal)}
}

// ObservablePlaces returns the names of the places that exist only to be
// read by external measures (never by the model's own gates): the KO cause
// code and, when tracked, the cumulative outcome counters. Model linting
// exempts these from the dead-place check.
func (a *AHS) ObservablePlaces() []string {
	names := []string{a.Model.PlaceName(a.koCause)}
	if a.Params.TrackOutcomes {
		names = append(names, a.Model.PlaceName(a.vOK), a.Model.PlaceName(a.vKO))
	}
	return names
}
