package core

import (
	"context"
	"fmt"

	"ahs/internal/mc"
	"ahs/internal/platoon"
	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
	"ahs/internal/telemetry"
)

// EvalOptions configures the Monte-Carlo estimation of the unsafety curve.
type EvalOptions struct {
	// Times is the ascending grid of trip durations at which S(t) is
	// estimated (required).
	Times []float64
	// Seed selects the deterministic random stream family.
	Seed uint64
	// StopRule is the convergence criterion (zero value: run exactly
	// MaxBatches). stats.PaperStopRule() reproduces §4.1.
	StopRule stats.RelativeStopRule
	// MaxBatches caps the simulation effort; 0 means 200000.
	MaxBatches uint64
	// Workers is the parallelism (0 = GOMAXPROCS).
	Workers int
	// FailureBias multiplies every failure-mode rate for importance
	// sampling, with trajectories reweighted by the exact likelihood
	// ratio. Values <= 1 mean naive simulation; use SuggestedFailureBias
	// for a horizon-adapted choice. Mandatory in practice for λ below
	// ~1e-4/hr, where the unsafety is too rare for naive estimation.
	FailureBias float64
	// CheckEvery overrides the convergence check round size (0 = 2000).
	CheckEvery uint64
	// Context, when non-nil, cancels the estimation mid-run; the
	// evaluation then returns the context's error. See mc.Job.Context.
	Context context.Context
	// Progress, when non-nil, receives (batchesDone, maxBatches) after
	// every convergence round. See mc.Job.Progress.
	Progress func(batchesDone, maxBatches uint64)
	// Snapshot, when non-nil, receives a partial curve (current Welford
	// means and confidence intervals) after every convergence round, so
	// callers can watch the CI converge live. See mc.Job.Snapshot.
	Snapshot func(partial *mc.Curve)
	// Telemetry, when non-nil, receives the full event stream of the
	// evaluation: activity firings, trajectory counts/lengths,
	// first-passage times to KO_total, catastrophic causes (ST1/ST2/ST3)
	// and maneuver attempts/failures per recovery type. Pass a
	// telemetry.SimCollector (with the strategy label and
	// trace.CollapseName) to expose them as Prometheus families. The sink
	// is installed on the AHS via Instrument for the duration of the
	// process; it must be safe for concurrent use. Nil disables all
	// instrumentation at the cost of one predictable branch per event.
	Telemetry telemetry.Sink
}

// SuggestedFailureBias returns a forcing factor for the failure-mode rates
// such that a trajectory of the given duration sees on average about three
// (biased) failure events — enough to reach the multi-failure catastrophic
// situations of Table 2 regularly while keeping likelihood-ratio variance
// moderate. The factor never goes below 1.
//
// Do not force much harder than this: over-biasing concentrates the rare
// event near t=0 under the sampling measure while the true probability mass
// is spread over the whole horizon, so the estimator becomes erratic and its
// empirical confidence interval over-confident. The calibration here is
// validated against exact CTMC solutions in the package tests.
func (a *AHS) SuggestedFailureBias(horizon float64) float64 {
	totalMult := 0.0
	for _, f := range platoon.AllFailureModes() {
		totalMult += f.RateMultiplier()
	}
	totalRate := float64(a.slots) * totalMult * a.Params.Lambda
	if totalRate <= 0 || horizon <= 0 {
		return 1
	}
	const targetFailures = 3.0
	bias := targetFailures / (totalRate * horizon)
	if bias < 1 {
		return 1
	}
	return bias
}

// failureBiasSpec builds the sim.Bias applying the forcing factor to every
// L1..L6 activity of every vehicle replica.
func (a *AHS) failureBiasSpec(factor float64) (*sim.Bias, error) {
	if factor <= 1 {
		return nil, nil
	}
	bias := sim.NewBias()
	for _, name := range a.failureActivities {
		if err := bias.SetByName(a.Model, name, factor); err != nil {
			return nil, fmt.Errorf("core: bias %q: %w", name, err)
		}
	}
	return bias, nil
}

// UnsafetyJob builds the Monte-Carlo job that UnsafetyCurve estimates,
// without running it. The job always classifies catastrophic causes, so a
// chunked estimator (mc.EstimateChunk, internal/cluster) can fold ST1/ST2/ST3
// counts into its sufficient statistics; the full telemetry stream is only
// attached when opts.Telemetry is set. Two calls with equal options return
// jobs that estimate bit-identical curves, on one machine or many.
func (a *AHS) UnsafetyJob(opts EvalOptions) (mc.Job, error) {
	if len(opts.Times) == 0 {
		return mc.Job{}, fmt.Errorf("core: empty time grid")
	}
	maxBatches := opts.MaxBatches
	if maxBatches == 0 {
		maxBatches = 200_000
	}
	bias, err := a.failureBiasSpec(opts.FailureBias)
	if err != nil {
		return mc.Job{}, err
	}
	job := mc.Job{
		Model: a.Model,
		Sim: sim.Options{
			MaxTime: opts.Times[len(opts.Times)-1],
			Stop:    a.Unsafe,
			Bias:    bias,
		},
		Times:      opts.Times,
		Value:      a.UnsafetyIndicator,
		Seed:       opts.Seed,
		StopRule:   opts.StopRule,
		MaxBatches: maxBatches,
		CheckEvery: opts.CheckEvery,
		Workers:    opts.Workers,
		Context:    opts.Context,
		Progress:   opts.Progress,
		Snapshot:   opts.Snapshot,
		Cause:      func(mk *san.Marking) string { return a.Cause(mk).String() },
	}
	a.instrumentJob(&job, opts.Telemetry)
	return job, nil
}

// UnsafetyCurve estimates S(t) over the option's time grid. KO_total is
// absorbing, so each trajectory is simulated until it becomes unsafe or the
// largest grid time is reached, and one trajectory contributes to every
// grid point.
func (a *AHS) UnsafetyCurve(opts EvalOptions) (*mc.Curve, error) {
	job, err := a.UnsafetyJob(opts)
	if err != nil {
		return nil, err
	}
	return mc.EstimateCurve(job)
}

// instrumentJob wires the evaluation's telemetry sink into both the model
// (maneuver attempts/failures, via Instrument) and the Monte-Carlo job
// (trajectory counts, step/first-passage histograms, catastrophe causes —
// and activity firings through mc's Sim.Sink propagation).
func (a *AHS) instrumentJob(job *mc.Job, sink telemetry.Sink) {
	if sink == nil {
		return
	}
	a.Instrument(sink)
	job.Telemetry = sink
	job.Cause = func(mk *san.Marking) string { return a.Cause(mk).String() }
}

// RecordTrajectory simulates one trajectory over the given horizon and
// returns its full event stream, for export with trace.Summarize or
// trace.WriteChromeTrace. The trajectory uses stream 0 of the seed's family
// and the same stopping rule as the estimators (absorb on KO_total);
// failureBias > 1 forces failures exactly like EvalOptions.FailureBias, which
// makes single-trajectory visualisations of rare-event regimes non-empty.
func (a *AHS) RecordTrajectory(horizon float64, seed uint64, failureBias float64) ([]sim.TraceEvent, sim.Result, error) {
	bias, err := a.failureBiasSpec(failureBias)
	if err != nil {
		return nil, sim.Result{}, err
	}
	tr := &sim.Trace{}
	r, err := sim.NewRunner(a.Model, sim.Options{
		MaxTime:  horizon,
		Stop:     a.Unsafe,
		Bias:     bias,
		Observer: tr,
	})
	if err != nil {
		return nil, sim.Result{}, err
	}
	res, err := r.Run(rng.NewSource(seed).Stream(0))
	if err != nil {
		return nil, sim.Result{}, err
	}
	return tr.Events, res, nil
}

// Unsafety estimates S(t) at a single trip duration.
func (a *AHS) Unsafety(t float64, opts EvalOptions) (stats.Interval, error) {
	opts.Times = []float64{t}
	curve, err := a.UnsafetyCurve(opts)
	if err != nil {
		return stats.Interval{}, err
	}
	return curve.Intervals[0], nil
}

// Breakdown is the decomposition of the unsafety by the catastrophic
// situation of Table 2 that triggered it.
type Breakdown struct {
	// Total is S(t).
	Total stats.Interval
	// BySituation maps ST1/ST2/ST3 to their contribution to S(t); the
	// three contributions sum to the total (they partition the unsafe
	// event by its cause).
	BySituation map[platoon.Situation]stats.Interval
}

// UnsafetyBreakdown estimates S(t) together with its decomposition by
// triggering catastrophic situation, on shared trajectories.
func (a *AHS) UnsafetyBreakdown(t float64, opts EvalOptions) (*Breakdown, error) {
	opts.Times = []float64{t}
	maxBatches := opts.MaxBatches
	if maxBatches == 0 {
		maxBatches = 200_000
	}
	bias, err := a.failureBiasSpec(opts.FailureBias)
	if err != nil {
		return nil, err
	}
	causeIndicator := func(s platoon.Situation) func(mk *san.Marking) float64 {
		return func(mk *san.Marking) float64 {
			if a.Cause(mk) == s {
				return 1
			}
			return 0
		}
	}
	job := mc.Job{
		Model:      a.Model,
		Sim:        sim.Options{MaxTime: t, Stop: a.Unsafe, Bias: bias},
		Times:      opts.Times,
		Value:      a.UnsafetyIndicator,
		Seed:       opts.Seed,
		StopRule:   opts.StopRule,
		MaxBatches: maxBatches,
		CheckEvery: opts.CheckEvery,
		Workers:    opts.Workers,
		Context:    opts.Context,
		Progress:   opts.Progress,
	}
	a.instrumentJob(&job, opts.Telemetry)
	main, extras, err := mc.EstimateCurveMulti(job, map[string]func(mk *san.Marking) float64{
		"ST1": causeIndicator(platoon.ST1),
		"ST2": causeIndicator(platoon.ST2),
		"ST3": causeIndicator(platoon.ST3),
	})
	if err != nil {
		return nil, err
	}
	return &Breakdown{
		Total: main.Intervals[0],
		BySituation: map[platoon.Situation]stats.Interval{
			platoon.ST1: extras["ST1"].Intervals[0],
			platoon.ST2: extras["ST2"].Intervals[0],
			platoon.ST3: extras["ST3"].Intervals[0],
		},
	}, nil
}
