package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ahs/internal/faultinject"
	"ahs/internal/resultstore"
	"ahs/internal/telemetry"
)

// The fleet chaos suite: a two-member in-process fleet works through one
// batch of scenarios while a seeded schedule kills the writer at a named
// fault site — mid-claim, mid-put, or mid-compaction. The "kill" is a
// panic thrown from the armed tripwire at the exact faulted instruction,
// unwound to the worker loop, followed by Abandon on every handle: file
// descriptors close without sync and the flock drops, which is what
// kill -9 leaves behind. The survivor must promote, adopt, and finish
// the batch; the assertions are the fleet's two safety claims:
//
//  1. exactly-once among the living: no scenario is evaluated twice by
//     live members — any double evaluation involves the killed member,
//     whose unfinished work is the one legitimate re-evaluation.
//  2. bit-identity: every stored curve matches a from-scratch reference
//     evaluation %b-exactly, whichever member computed and however it
//     reached the segment (direct write, forward, post-promotion flush).
//
// Schedules are replayable: the kill point is drawn from the seed logged
// on failure.
type chaosMember struct {
	name  string
	store *resultstore.Store
	node  *Node
	srv   *httptest.Server
	trip  *faultinject.Tripwire
	dead  atomic.Bool
	mu    sync.Mutex
	evals map[string]int
	queue chan json.RawMessage
}

// killPanic unwinds from a fault site to the worker loop.
type killPanic struct{ site string }

type chaosScenario struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
}

// evalScenario is the deterministic stand-in evaluation: the reference
// run and every member compute bit-identical docs from the same input.
func evalScenario(sc chaosScenario) []byte {
	doc := map[string]any{
		"name":     sc.Name,
		"unsafety": []float64{sc.X / 3.0 * 1e-13, sc.X * sc.X / 7.0},
	}
	b, _ := json.Marshal(doc)
	return b
}

func newChaosMember(t *testing.T, dir, name string, follower bool) *chaosMember {
	t.Helper()
	m := &chaosMember{
		name:  name,
		trip:  faultinject.NewTripwire(),
		evals: make(map[string]int),
		queue: make(chan json.RawMessage, 256),
	}
	store, err := resultstore.Open(resultstore.Config{
		Dir:      dir,
		Owner:    name,
		ReadOnly: follower,
		Logf:     t.Logf,
		Hook:     m.trip.Hit,
	})
	if err != nil {
		t.Fatalf("open store (%s): %v", name, err)
	}
	m.store = store
	m.srv = httptest.NewServer(nil)
	node, err := New(Config{
		Dir:        dir,
		Owner:      name,
		URL:        m.srv.URL,
		Store:      store,
		Heartbeat:  20 * time.Millisecond,
		ClaimTTL:   80 * time.Millisecond,
		Telemetry:  telemetry.NewRegistry(),
		Logf:       t.Logf,
		ClaimsHook: m.trip.Hit,
		Submit:     func(sc json.RawMessage) { m.queue <- sc },
	})
	if err != nil {
		t.Fatalf("fleet.New(%s): %v", name, err)
	}
	m.node = node
	// The kill can land while this member is ingesting a peer's forward
	// (store.Put inside the HTTP handler). net/http recovers handler
	// panics, so translate a killPanic here too or the SIGKILL would be
	// silently absorbed; the forwarding peer sees the dropped connection
	// and parks its put for retry, exactly as with a real dead writer.
	inner := node.Handler()
	m.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if kp, ok := rec.(killPanic); ok {
					t.Logf("chaos: %s killed at %s (during ingest)", m.name, kp.site)
					go m.kill()
					panic(http.ErrAbortHandler)
				}
				panic(rec)
			}
		}()
		if m.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	})
	t.Cleanup(func() {
		m.srv.Close()
		node.Close()
		store.Close()
	})
	return m
}

// kill models the SIGKILL landing: no syncs, no releases, locks drop.
func (m *chaosMember) kill() {
	if m.dead.Swap(true) {
		return
	}
	m.node.claims.Abandon()
	m.store.Abandon()
	m.srv.Close()
}

// work processes one scenario: dedup against the store, claim, evaluate,
// persist. A killPanic from an armed fault site turns into kill().
func (m *chaosMember) work(t *testing.T, raw json.RawMessage) {
	defer func() {
		if r := recover(); r != nil {
			if kp, ok := r.(killPanic); ok {
				t.Logf("chaos: %s killed at %s", m.name, kp.site)
				m.kill()
				return
			}
			panic(r)
		}
	}()
	var sc chaosScenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Errorf("bad scenario %q: %v", raw, err)
		return
	}
	if m.store.Has(sc.Name) {
		return
	}
	acquired, _, err := m.node.TryClaim(sc.Name, raw)
	if err != nil || !acquired {
		return
	}
	m.mu.Lock()
	m.evals[sc.Name]++
	m.mu.Unlock()
	if err := m.node.PutResult(sc.Name, evalScenario(sc)); err != nil {
		t.Logf("chaos: %s PutResult(%s): %v", m.name, sc.Name, err)
	}
}

// run drains the member's queue until ctx ends, ticking the node between
// batches (claim renewal, failover detection, pending-put flushes).
func (m *chaosMember) run(ctx context.Context, t *testing.T, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case raw := <-m.queue:
			if !m.dead.Load() {
				m.work(t, raw)
			}
		case <-tick.C:
			if !m.dead.Load() {
				m.node.Tick()
			}
		}
	}
}

func TestFleetChaosSchedules(t *testing.T) {
	const numScenarios = 24
	const seed = 0xF1EE7

	schedules := []struct {
		name string
		site string // "" = control, no kill
	}{
		{"control-no-kill", ""},
		{"kill-writer-mid-claim", "claims.post-append"},
		{"kill-writer-mid-put", "put.pre-sync"},
		{"kill-writer-mid-compaction", "compact.pre-rename"},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			dir := t.TempDir()
			writer := newChaosMember(t, dir, "chaos-w", false)
			survivor := newChaosMember(t, dir, "chaos-f", true)

			if sched.site != "" {
				at := faultinject.PickHit(seed, sched.name, 8)
				t.Logf("chaos: seed %#x arms %s at hit %d", seed, sched.site, at)
				writer.trip.Arm(sched.site, at, func() { panic(killPanic{site: sched.site}) })
			}

			// Reference evaluations, computed before the fleet runs.
			want := make(map[string]string, numScenarios)
			scenarios := make([]json.RawMessage, 0, numScenarios)
			for i := 0; i < numScenarios; i++ {
				sc := chaosScenario{Name: fmt.Sprintf("sc-%02d", i), X: float64(i) + 0.5}
				raw, _ := json.Marshal(sc)
				scenarios = append(scenarios, raw)
				want[sc.Name] = string(evalScenario(sc))
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			wg.Add(2)
			go writer.run(ctx, t, &wg)
			go survivor.run(ctx, t, &wg)

			// Clients submit through both instances, interleaved — the
			// claims table is the only thing preventing double work. The
			// writer periodically compacts, giving the mid-compaction
			// schedule its fault site.
			for i, raw := range scenarios {
				writer.queue <- raw
				survivor.queue <- raw
				if i%5 == 4 && !writer.dead.Load() {
					func() {
						defer func() {
							if r := recover(); r != nil {
								if kp, ok := r.(killPanic); ok {
									t.Logf("chaos: chaos-w killed at %s (during compaction)", kp.site)
									writer.kill()
									return
								}
								panic(r)
							}
						}()
						writer.store.Compact()
					}()
				}
				time.Sleep(2 * time.Millisecond)
			}

			// Wait for the fleet to finish the batch: every scenario
			// persisted (read through a fresh follower handle).
			check, err := resultstore.Open(resultstore.Config{
				Dir: dir, Owner: "chaos-check", ReadOnly: true, Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer check.Close()
			deadline := time.Now().Add(15 * time.Second)
			for {
				done := 0
				for name := range want {
					if check.Has(name) {
						done++
					}
				}
				if done == numScenarios {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("seed %#x: fleet finished only %d/%d scenarios", seed, done, numScenarios)
				}
				time.Sleep(20 * time.Millisecond)
			}
			cancel()
			wg.Wait()

			// Bit-identity: every stored curve equals the reference, %b
			// floats included (JSON round-trips float64 bits exactly).
			for name, wantJSON := range want {
				var got json.RawMessage
				ok, err := check.Get(name, &got)
				if err != nil || !ok {
					t.Fatalf("Get(%s) = %v, %v", name, ok, err)
				}
				var wantDoc, gotDoc struct {
					Unsafety []float64 `json:"unsafety"`
				}
				json.Unmarshal([]byte(wantJSON), &wantDoc)
				json.Unmarshal(got, &gotDoc)
				if len(gotDoc.Unsafety) != len(wantDoc.Unsafety) {
					t.Fatalf("%s: stored %d values, want %d", name, len(gotDoc.Unsafety), len(wantDoc.Unsafety))
				}
				for i := range wantDoc.Unsafety {
					if fmt.Sprintf("%b", gotDoc.Unsafety[i]) != fmt.Sprintf("%b", wantDoc.Unsafety[i]) {
						t.Errorf("seed %#x: %s[%d] = %b, want %b", seed, name, i, gotDoc.Unsafety[i], wantDoc.Unsafety[i])
					}
				}
			}

			// Exactly-once accounting.
			for _, m := range []*chaosMember{writer, survivor} {
				m.mu.Lock()
				for name, count := range m.evals {
					if count > 1 {
						t.Errorf("seed %#x: %s evaluated %s %d times", seed, m.name, name, count)
					}
				}
				m.mu.Unlock()
			}
			writer.mu.Lock()
			survivor.mu.Lock()
			total := 0
			for name := range want {
				n := writer.evals[name] + survivor.evals[name]
				total += n
				if n == 0 {
					t.Errorf("%s persisted without any recorded evaluation", name)
				}
				// A scenario evaluated twice is legitimate only when the
				// killed member did one of the two (its in-flight work).
				if n > 1 && sched.site == "" {
					t.Errorf("control schedule double-evaluated %s", name)
				}
				if n > 1 && writer.evals[name] == 0 {
					t.Errorf("seed %#x: %s double-evaluated without the killed member involved", seed, name)
				}
			}
			writer.mu.Unlock()
			survivor.mu.Unlock()
			if sched.site == "" && total != numScenarios {
				t.Errorf("control schedule ran %d evaluations for %d scenarios", total, numScenarios)
			}

			if sched.site != "" {
				if !writer.dead.Load() {
					t.Fatalf("seed %#x: schedule %s never killed the writer (site hits: %d)",
						seed, sched.name, writer.trip.Hits(sched.site))
				}
				if got := survivor.node.Role(); got != string(RoleWriter) {
					t.Errorf("survivor role = %s, want writer", got)
				}
				if got := survivor.node.metrics.promotions.Value(); got != 1 {
					t.Errorf("promotions = %d, want 1", got)
				}
				if got := survivor.node.Epoch(); got < 2 {
					t.Errorf("post-failover epoch = %d, want ≥ 2", got)
				}
			}
		})
	}
}
