package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
)

// maxResultBytes bounds one forwarded result document. Curves are
// kilobytes; anything near this is a protocol error, not data.
const maxResultBytes = 8 << 20

// Handler returns the node's fleet API, mounted under /fleet/v1/ by
// cmd/ahs-serve:
//
//	POST /fleet/v1/results?hash={hash}   writer-side result ingest
//	GET  /fleet/v1/info                  role, epoch, identity
//
// The ingest endpoint is where fencing is enforced: a put stamped with a
// stale epoch, or sent by a node that no longer owns the hash's claim,
// is rejected with 409 and counted in ahs_fleet_fenced_writes_total. A
// put reaching a non-writer gets 421 plus this node's view of the writer
// so the sender can re-aim.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathResults, n.handleResultPut)
	mux.HandleFunc("GET "+PathInfo, n.handleInfo)
	return mux
}

func (n *Node) handleResultPut(w http.ResponseWriter, r *http.Request) {
	hash := r.URL.Query().Get("hash")
	if hash == "" {
		http.Error(w, "fleet: missing hash parameter", http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	role := n.role
	current := n.epoch
	n.mu.Unlock()
	if role != RoleWriter {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(n.Health())
		return
	}
	epoch, err := strconv.ParseUint(r.Header.Get(HeaderEpoch), 10, 64)
	if err != nil {
		http.Error(w, "fleet: missing or malformed "+HeaderEpoch, http.StatusBadRequest)
		return
	}
	sender := r.Header.Get(HeaderOwner)
	if sender == "" {
		http.Error(w, "fleet: missing "+HeaderOwner, http.StatusBadRequest)
		return
	}
	if epoch < current {
		n.metrics.fencedIn.Inc()
		n.cfg.Logf("fleet: fenced stale put for %s from %s (epoch %d < %d)", hash, sender, epoch, current)
		http.Error(w, "fleet: stale epoch, put fenced", http.StatusConflict)
		return
	}
	// The sender must still own the claim it is completing: a claim
	// stolen after a missed TTL means a peer (or this writer, via
	// adoption) owns the scenario now, and the loser's result is
	// superseded.
	if st, ok, err := n.claims.Get(hash); err == nil && ok && st.Owner != sender {
		n.metrics.fencedIn.Inc()
		n.cfg.Logf("fleet: fenced put for %s from %s (claim now owned by %s)", hash, sender, st.Owner)
		http.Error(w, "fleet: claim no longer held by sender, put fenced", http.StatusConflict)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxResultBytes+1))
	if err != nil {
		http.Error(w, "fleet: reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxResultBytes {
		http.Error(w, "fleet: result document too large", http.StatusRequestEntityTooLarge)
		return
	}
	if !json.Valid(body) {
		http.Error(w, "fleet: body is not valid JSON", http.StatusBadRequest)
		return
	}
	if err := n.cfg.Store.Put(hash, json.RawMessage(body)); err != nil {
		http.Error(w, "fleet: store put: "+err.Error(), http.StatusInternalServerError)
		return
	}
	n.metrics.ingested.Inc()
	w.WriteHeader(http.StatusCreated)
}

func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.Health())
}
