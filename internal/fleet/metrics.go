package fleet

import (
	"ahs/internal/telemetry"
)

// metrics are the ahs_fleet_* families. The failover e2e's assertions
// rest on them: exactly-once is "completed counters across the fleet sum
// to the scenario count", failover is "promotions_total went 0→1 and
// epoch rose", and fencing is "fenced_writes_total counted the stale
// put". Counters degrade to no-ops without a registry (tests that don't
// scrape).
type metrics struct {
	claims     *telemetry.Counter
	conflicts  *telemetry.Counter
	steals     *telemetry.Counter
	promotions *telemetry.Counter
	adoptions  *telemetry.Counter
	// fencedIn counts stale puts this node rejected as the writer;
	// fencedOut counts this node's own puts a writer fenced.
	fencedIn  *telemetry.Counter
	fencedOut *telemetry.Counter
	forwarded *telemetry.Counter
	ingested  *telemetry.Counter
	epoch     *telemetry.Gauge
	role      *telemetry.Gauge
}

// roleValue encodes roles for the ahs_fleet_role gauge.
func roleValue(r Role) int64 {
	switch r {
	case RoleWriter:
		return 2
	case RolePromoting:
		return 1
	default:
		return 0
	}
}

func newMetrics(reg *telemetry.Registry, n *Node) metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(telemetry.Opts{Name: name, Help: help})
	}
	return metrics{
		claims:     counter("ahs_fleet_claims_total", "Work claims this node acquired (steals and adoptions included)."),
		conflicts:  counter("ahs_fleet_claim_conflicts_total", "Claim attempts lost to a live peer (submitter redirected)."),
		steals:     counter("ahs_fleet_steals_total", "Expired peer claims this node took over."),
		promotions: counter("ahs_fleet_promotions_total", "Follower-to-writer promotions this node performed."),
		adoptions:  counter("ahs_fleet_adoptions_total", "Dead nodes' unfinished scenarios re-submitted at promotion."),
		fencedIn:   counter("ahs_fleet_fenced_writes_total", "Stale result puts this node rejected as the writer."),
		fencedOut:  counter("ahs_fleet_fenced_out_total", "This node's result puts fenced by a writer."),
		forwarded:  counter("ahs_fleet_forwarded_results_total", "Finished results forwarded to the writer."),
		ingested:   counter("ahs_fleet_ingested_results_total", "Peer results this node persisted as the writer."),
		epoch:      reg.Gauge(telemetry.Opts{Name: "ahs_fleet_epoch", Help: "Fencing epoch this node operates under."}),
		role:       reg.Gauge(telemetry.Opts{Name: "ahs_fleet_role", Help: "Node role: 0 follower, 1 promoting, 2 writer."}),
	}
}

func (m *metrics) observeRole(r Role) { m.role.Set(roleValue(r)) }

func (m *metrics) observeEpoch(e uint64) { m.epoch.Set(int64(e)) }
