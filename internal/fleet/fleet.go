// Package fleet coordinates N ahs-serve instances sharing one result-store
// directory into a single logical evaluation queue with exactly-once
// semantics and writer failover.
//
// The store directory already gave a fleet shared *results* (one flock
// writer, many followers); fleet adds shared *work*. Three on-disk
// primitives from internal/resultstore carry the whole protocol:
//
//   - the claims segment: before evaluating a scenario, a node claims its
//     hash. Peers that lose the claim race redirect the submitter to the
//     owner instead of evaluating again — the fleet-wide analogue of the
//     in-process dedup table. Claims are heartbeat-renewed with a TTL, so
//     a kill -9'd node's claims expire and survivors adopt the work.
//   - the fencing epoch: a persisted counter advanced only under the
//     store's writer flock — at writer startup and at promotion. Every
//     result put is stamped with the putter's epoch; the writer rejects
//     stale-epoch puts, so a node acting on a superseded view of the
//     fleet can never corrupt the store. Rejections are counted, not
//     retried blindly: the sender refreshes its epoch and re-stamps while
//     it still owns the claim.
//   - the writer heartbeat (writer.json): rewritten every interval by the
//     writer. Followers use it to find the writer (result puts are
//     forwarded to its URL) and to detect its death: a released flock
//     alone is not enough to promote — the heartbeat must also be stale —
//     so a writer bouncing through restart keeps its role.
//
// Failover: when the writer dies, followers race Store.Promote. Exactly
// one wins the freed flock, replays the segment (truncating any torn
// tail), advances the epoch, adopts claimed-but-unfinished work (claim
// records carry the scenario JSON precisely so survivors can re-evaluate
// without the original submitter), and starts heartbeating as the writer.
// The roles a node moves through — follower, promoting, writer — are
// served in /healthz and the ahs_fleet_role gauge.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"ahs/internal/resultstore"
	"ahs/internal/telemetry"
)

// Role names a node's position in the fleet.
type Role string

// The roles a node moves through. A node born holding the writer flock
// starts as RoleWriter; everyone else starts as RoleFollower and only
// passes through RolePromoting on the way up.
const (
	RoleFollower  Role = "follower"
	RolePromoting Role = "promoting"
	RoleWriter    Role = "writer"
)

// Fleet HTTP protocol constants. The ingest endpoint is mounted by
// cmd/ahs-serve next to /cluster/v1/; followers POST finished results
// there instead of writing the (read-only to them) segment directly.
const (
	// PathResults is the writer's result-ingest endpoint.
	PathResults = "/fleet/v1/results"
	// PathInfo reports a node's role, epoch and identity.
	PathInfo = "/fleet/v1/info"
	// HeaderEpoch carries the sender's fencing epoch on a result put.
	HeaderEpoch = "X-AHS-Fleet-Epoch"
	// HeaderOwner carries the sender's claim identity on a result put.
	HeaderOwner = "X-AHS-Fleet-Owner"
)

// ErrFenced reports a result put rejected by the writer's fencing check:
// the sender's epoch was stale, or it no longer owns the claim it was
// completing. The result is discarded; the current claim owner (or the
// adopting writer) re-evaluates.
var ErrFenced = errors.New("fleet: result put fenced by the writer")

// Config configures a Node. Dir, Store and URL are required.
type Config struct {
	// Dir is the shared store directory.
	Dir string
	// Owner is this node's fleet identity (default "pid-<PID>"); it names
	// the node in claims, the writer heartbeat and lock-contention errors.
	Owner string
	// URL is this node's advertised base URL (scheme://host:port).
	// Claims carry it so peers can redirect submitters here, and the
	// writer heartbeat carries it so followers can forward result puts.
	URL string
	// Store is the shared result store, opened writer or follower by the
	// caller; the node takes over role management (Promote) but not
	// lifecycle (Close).
	Store *resultstore.Store
	// Heartbeat is the writer-heartbeat and claim-renewal interval
	// (default 500ms). A writer whose heartbeat is older than 4 intervals
	// is presumed dead.
	Heartbeat time.Duration
	// ClaimTTL is the claim expiry (default 8×Heartbeat). It bounds how
	// long a crashed node's in-flight work stays unavailable.
	ClaimTTL time.Duration
	// Submit, when non-nil, receives adopted scenarios — claimed by a
	// dead node, unfinished, inherited at promotion — for re-evaluation.
	// cmd/ahs-serve wires it to the service manager's submit path.
	Submit func(scenario json.RawMessage)
	// Telemetry, when non-nil, receives the ahs_fleet_* families.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Client is the HTTP client for forwarding puts to the writer
	// (default: a 5s-timeout client).
	Client *http.Client
	// ClaimsHook forwards to ClaimsConfig.Hook (chaos tests only).
	ClaimsHook func(site string)
}

// Node is one fleet member. Create with New, drive with Run, integrate
// with TryClaim/Release/PutResult (the service layer) and Handler (the
// HTTP layer).
type Node struct {
	cfg     Config
	claims  *resultstore.Claims
	metrics metrics

	mu      sync.Mutex
	role    Role
	epoch   uint64 // last epoch this node observed (its own, as writer)
	writer  resultstore.WriterInfo
	owned   map[string]bool   // claims this node holds
	pending map[string][]byte // finished results awaiting a successful forward
}

// New opens the claims region of cfg.Dir and determines the starting
// role from the store handle: a writer store means this node IS the
// writer — it advances the fencing epoch and starts heartbeating; a
// follower store starts as a follower.
func New(cfg Config) (*Node, error) {
	if cfg.Dir == "" || cfg.Store == nil || cfg.URL == "" {
		return nil, errors.New("fleet: Config.Dir, Store and URL are required")
	}
	if cfg.Owner == "" {
		cfg.Owner = fmt.Sprintf("pid-%d", os.Getpid())
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.ClaimTTL <= 0 {
		cfg.ClaimTTL = 8 * cfg.Heartbeat
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	claims, err := resultstore.OpenClaims(resultstore.ClaimsConfig{
		Dir:   cfg.Dir,
		Owner: cfg.Owner,
		URL:   cfg.URL,
		Logf:  cfg.Logf,
		Hook:  cfg.ClaimsHook,
	})
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		claims:  claims,
		owned:   make(map[string]bool),
		pending: make(map[string][]byte),
	}
	n.metrics = newMetrics(cfg.Telemetry, n)
	if !cfg.Store.ReadOnly() {
		// Born writer: every writer incarnation gets a fresh epoch, so a
		// restart fences anything stamped before the crash.
		epoch, err := resultstore.AdvanceEpoch(cfg.Dir, cfg.Owner)
		if err != nil {
			claims.Close()
			return nil, err
		}
		n.role = RoleWriter
		n.epoch = epoch
		if err := n.writeHeartbeat(); err != nil {
			claims.Close()
			return nil, err
		}
		cfg.Logf("fleet: %s is the writer under epoch %d", cfg.Owner, epoch)
	} else {
		n.role = RoleFollower
		n.refreshView()
		cfg.Logf("fleet: %s following writer %s (epoch %d)", cfg.Owner, n.writer.Owner, n.epoch)
	}
	n.metrics.observeRole(n.role)
	n.metrics.observeEpoch(n.epoch)
	return n, nil
}

// Run drives heartbeats, claim renewal, failover detection and pending-put
// retries until ctx is cancelled. Call it in a goroutine.
func (n *Node) Run(ctx context.Context) {
	ticker := time.NewTicker(n.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			n.shutdown()
			return
		case <-ticker.C:
			n.Tick()
		}
	}
}

// Tick runs one maintenance round: heartbeat (writer) or failover check
// (follower), claim renewal, pending-put retries. Exported so tests can
// drive the node without real time.
func (n *Node) Tick() {
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	switch role {
	case RoleWriter:
		if err := n.writeHeartbeat(); err != nil {
			n.cfg.Logf("fleet: heartbeat write failed: %v", err)
		}
		// The adoption sweep runs every writer tick, not just at
		// promotion: a claim that outlived its owner (a crashed follower,
		// or claims that had not yet expired when this node promoted)
		// becomes adoptable only once its TTL lapses, whenever that is.
		n.adopt()
	case RoleFollower:
		n.refreshView()
		n.maybePromote()
	}
	n.renewOwned()
	n.flushPending()
}

// shutdown releases held claims so peers need not wait out the TTL.
// Best-effort: a kill -9 skips it, which is what the TTL is for.
func (n *Node) shutdown() {
	n.mu.Lock()
	keys := make([]string, 0, len(n.owned))
	for k := range n.owned {
		keys = append(keys, k)
	}
	n.owned = make(map[string]bool)
	n.mu.Unlock()
	for _, k := range keys {
		if err := n.claims.Release(k); err != nil {
			n.cfg.Logf("fleet: shutdown release of %s failed: %v", k, err)
		}
	}
}

// Role reports the node's current role.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return string(n.role)
}

// Epoch reports the node's current view of the fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Health returns the node's health document, merged into GET /healthz by
// cmd/ahs-serve: role, epoch, identity, claim and pending counts, and the
// writer this node believes in.
func (n *Node) Health() map[string]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := map[string]any{
		"role":    string(n.role),
		"epoch":   n.epoch,
		"owner":   n.cfg.Owner,
		"url":     n.cfg.URL,
		"claims":  len(n.owned),
		"pending": len(n.pending),
	}
	if n.role != RoleWriter && n.writer.Owner != "" {
		h["writer"] = map[string]any{"owner": n.writer.Owner, "url": n.writer.URL, "epoch": n.writer.Epoch}
	}
	return h
}

// TryClaim claims hash for this node, recording scenario for adoption.
// acquired=false with a non-empty holderURL means a live peer owns it —
// the caller should redirect the submitter there instead of evaluating.
func (n *Node) TryClaim(hash string, scenario []byte) (acquired bool, holderURL string, err error) {
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	st, stole, err := n.claims.Acquire(hash, epoch, n.cfg.ClaimTTL, scenario)
	if errors.Is(err, resultstore.ErrClaimHeld) {
		n.metrics.conflicts.Inc()
		return false, st.URL, nil
	}
	if err != nil {
		return false, "", err
	}
	n.metrics.claims.Inc()
	if stole {
		n.metrics.steals.Inc()
		n.cfg.Logf("fleet: %s stole expired claim on %s", n.cfg.Owner, hash)
	}
	n.mu.Lock()
	n.owned[hash] = true
	n.mu.Unlock()
	return true, "", nil
}

// Release drops this node's claim on hash (evaluation failed or was
// cancelled; the work is up for grabs again).
func (n *Node) Release(hash string) {
	n.mu.Lock()
	delete(n.owned, hash)
	delete(n.pending, hash)
	n.mu.Unlock()
	if err := n.claims.Release(hash); err != nil {
		n.cfg.Logf("fleet: release of %s failed: %v", hash, err)
	}
}

// PutResult persists a finished result fleet-wide and releases the claim.
// The writer writes the segment directly; a follower forwards to the
// writer's advertised URL. A forward that fails transiently parks the
// result in the pending queue — the claim stays held and renewed, so no
// peer duplicates the work while the writer is unreachable — and retries
// each tick. A fenced forward (stale epoch, lost claim) returns ErrFenced
// and drops the claim: the result is superseded, not retryable.
func (n *Node) PutResult(hash string, value []byte) error {
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	n.mu.Unlock()
	if role == RoleWriter {
		if err := n.cfg.Store.Put(hash, json.RawMessage(value)); err != nil {
			return err
		}
		n.finishPut(hash)
		return nil
	}
	err := n.forwardPut(hash, value, epoch)
	switch {
	case err == nil:
		n.finishPut(hash)
		return nil
	case errors.Is(err, ErrFenced):
		n.metrics.fencedOut.Inc()
		n.Release(hash)
		return err
	default:
		n.cfg.Logf("fleet: forwarding result for %s failed (queued for retry): %v", hash, err)
		n.mu.Lock()
		n.pending[hash] = value
		n.mu.Unlock()
		return nil
	}
}

// finishPut releases the claim after a successful persist — the ordering
// that guarantees every scenario is always covered by a claim or a store
// entry, never neither.
func (n *Node) finishPut(hash string) {
	n.mu.Lock()
	delete(n.owned, hash)
	delete(n.pending, hash)
	n.mu.Unlock()
	if err := n.claims.Release(hash); err != nil {
		n.cfg.Logf("fleet: post-put release of %s failed: %v", hash, err)
	}
}

// forwardPut POSTs one finished result to the writer.
func (n *Node) forwardPut(hash string, value []byte, epoch uint64) error {
	n.mu.Lock()
	writerURL := n.writer.URL
	n.mu.Unlock()
	if writerURL == "" {
		return errors.New("fleet: no writer known")
	}
	req, err := http.NewRequest(http.MethodPost, writerURL+PathResults+"?hash="+hash, bytes.NewReader(value))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderEpoch, fmt.Sprint(epoch))
	req.Header.Set(HeaderOwner, n.cfg.Owner)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated:
		n.metrics.forwarded.Inc()
		return nil
	case http.StatusConflict:
		return ErrFenced
	default:
		return fmt.Errorf("fleet: writer answered %s", resp.Status)
	}
}

// refreshView re-reads the writer heartbeat and fencing epoch. A follower
// whose epoch view advances here re-stamps its pending work before the
// next forward, which is how a put that raced a promotion recovers
// instead of staying fenced.
func (n *Node) refreshView() {
	info, ok, err := resultstore.ReadWriterInfo(n.cfg.Dir)
	if err != nil {
		n.cfg.Logf("fleet: reading writer info failed: %v", err)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ok {
		n.writer = info
		if info.Epoch > n.epoch {
			n.epoch = info.Epoch
			n.metrics.observeEpoch(n.epoch)
		}
	}
}

// maybePromote checks both failover conditions — stale heartbeat AND
// acquirable flock — and runs the promotion sequence when they hold.
func (n *Node) maybePromote() {
	info, ok, err := resultstore.ReadWriterInfo(n.cfg.Dir)
	if err != nil {
		n.cfg.Logf("fleet: reading writer info failed: %v", err)
		return
	}
	if ok && !info.Expired(time.Now()) {
		return // writer is alive
	}
	n.setRole(RolePromoting)
	if err := n.promote(); err != nil {
		// Lost the race (a peer promoted first) or the writer is back:
		// drop back to following; the next tick re-reads the new world.
		if !errors.Is(err, resultstore.ErrLocked) {
			n.cfg.Logf("fleet: promotion failed: %v", err)
		}
		n.setRole(RoleFollower)
		return
	}
}

// promote turns this follower into the writer: win the flock and replay
// the segment (Store.Promote), advance the fencing epoch, heartbeat, then
// adopt claimed-but-unfinished work.
func (n *Node) promote() error {
	if err := n.cfg.Store.Promote(); err != nil {
		return err
	}
	epoch, err := resultstore.AdvanceEpoch(n.cfg.Dir, n.cfg.Owner)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.role = RoleWriter
	n.epoch = epoch
	n.mu.Unlock()
	if err := n.writeHeartbeat(); err != nil {
		return err
	}
	n.metrics.promotions.Inc()
	n.metrics.observeRole(RoleWriter)
	n.metrics.observeEpoch(epoch)
	n.cfg.Logf("fleet: %s promoted to writer under epoch %d", n.cfg.Owner, epoch)
	n.adopt()
	return nil
}

// adopt sweeps the claims table for dead nodes' unfinished work: expired
// claims whose result never reached the store. Each is re-claimed under
// the new epoch and re-submitted for evaluation through cfg.Submit.
func (n *Node) adopt() {
	snap, err := n.claims.Snapshot()
	if err != nil {
		n.cfg.Logf("fleet: adoption sweep failed: %v", err)
		return
	}
	now := time.Now()
	for _, st := range snap {
		if st.Owner == n.cfg.Owner || !st.Expired(now) {
			continue
		}
		if n.cfg.Store.Has(st.Key) {
			// Finished before the crash; just clear the stale claim.
			continue
		}
		if len(st.Scenario) == 0 {
			n.cfg.Logf("fleet: cannot adopt %s: claim carries no scenario", st.Key)
			continue
		}
		acquired, _, err := n.TryClaim(st.Key, st.Scenario)
		if err != nil || !acquired {
			continue
		}
		n.metrics.adoptions.Inc()
		n.cfg.Logf("fleet: adopted %s from dead node %s", st.Key, st.Owner)
		if n.cfg.Submit != nil {
			n.cfg.Submit(st.Scenario)
		}
	}
}

// renewOwned extends this node's claims; claims reported lost (stolen
// after a missed TTL) are dropped locally so their evaluations' puts
// fence out instead of fighting the thief.
func (n *Node) renewOwned() {
	n.mu.Lock()
	keys := make([]string, 0, len(n.owned))
	for k := range n.owned {
		keys = append(keys, k)
	}
	epoch := n.epoch
	n.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	lost, err := n.claims.Renew(keys, epoch, n.cfg.ClaimTTL)
	if err != nil {
		n.cfg.Logf("fleet: claim renewal failed: %v", err)
		return
	}
	if len(lost) > 0 {
		n.mu.Lock()
		for _, k := range lost {
			delete(n.owned, k)
			delete(n.pending, k)
		}
		n.mu.Unlock()
		n.cfg.Logf("fleet: lost %d claims to peers: %v", len(lost), lost)
	}
}

// flushPending retries parked result forwards.
func (n *Node) flushPending() {
	n.mu.Lock()
	if len(n.pending) == 0 {
		n.mu.Unlock()
		return
	}
	batch := make(map[string][]byte, len(n.pending))
	for k, v := range n.pending {
		batch[k] = v
	}
	role := n.role
	epoch := n.epoch
	n.mu.Unlock()
	for hash, value := range batch {
		if role == RoleWriter {
			// Promoted with puts still parked: write them ourselves.
			if err := n.cfg.Store.Put(hash, json.RawMessage(value)); err != nil {
				n.cfg.Logf("fleet: local flush of %s failed: %v", hash, err)
				continue
			}
			n.finishPut(hash)
			continue
		}
		err := n.forwardPut(hash, value, epoch)
		switch {
		case err == nil:
			n.finishPut(hash)
		case errors.Is(err, ErrFenced):
			n.metrics.fencedOut.Inc()
			n.Release(hash)
		default:
			n.cfg.Logf("fleet: retry forward of %s failed: %v", hash, err)
		}
	}
}

// writeHeartbeat rewrites writer.json with a deadline 4 heartbeats out.
func (n *Node) writeHeartbeat() error {
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	return resultstore.WriteWriterInfo(n.cfg.Dir, resultstore.WriterInfo{
		Owner:   n.cfg.Owner,
		URL:     n.cfg.URL,
		Epoch:   epoch,
		Expires: time.Now().Add(4 * n.cfg.Heartbeat).UnixNano(),
	})
}

func (n *Node) setRole(r Role) {
	n.mu.Lock()
	changed := n.role != r
	n.role = r
	n.mu.Unlock()
	if changed {
		n.metrics.observeRole(r)
		n.cfg.Logf("fleet: %s role -> %s", n.cfg.Owner, r)
	}
}

// Close releases held claims and the claims handle. The store handle
// belongs to the caller.
func (n *Node) Close() error {
	n.shutdown()
	return n.claims.Close()
}
