package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ahs/internal/resultstore"
	"ahs/internal/telemetry"
)

// harness is one in-process fleet member: a store handle, a node, and the
// node's fleet API on a live httptest server (so peer forwarding works).
type harness struct {
	store *resultstore.Store
	node  *Node
	srv   *httptest.Server
	reg   *telemetry.Registry
}

// newMember opens dir as owner and builds the member. follower forces a
// read-only store open (a writer must already hold the flock).
func newMember(t *testing.T, dir, owner string, follower bool, tweak func(*Config)) *harness {
	t.Helper()
	store, err := resultstore.Open(resultstore.Config{
		Dir:      dir,
		Owner:    owner,
		ReadOnly: follower,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("Open store (%s): %v", owner, err)
	}
	srv := httptest.NewServer(nil) // handler set below, after the node exists
	reg := telemetry.NewRegistry()
	cfg := Config{
		Dir:       dir,
		Owner:     owner,
		URL:       srv.URL,
		Store:     store,
		Heartbeat: 20 * time.Millisecond,
		ClaimTTL:  80 * time.Millisecond,
		Telemetry: reg,
		Logf:      t.Logf,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	node, err := New(cfg)
	if err != nil {
		srv.Close()
		store.Close()
		t.Fatalf("fleet.New(%s): %v", owner, err)
	}
	srv.Config.Handler = node.Handler()
	h := &harness{store: store, node: node, srv: srv, reg: reg}
	t.Cleanup(func() {
		srv.Close()
		node.Close()
		store.Close()
	})
	return h
}

// resultDoc mirrors the service layer's stored shape closely enough for
// bit-identity checks.
type resultDoc struct {
	Name     string    `json:"name"`
	Unsafety []float64 `json:"unsafety"`
}

func docJSON(t *testing.T, seed int) []byte {
	t.Helper()
	d := resultDoc{Name: fmt.Sprintf("doc-%d", seed)}
	for i := 0; i < 4; i++ {
		d.Unsafety = append(d.Unsafety, float64(seed)/3.0*1e-13)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWriterRoleAndEpochAtBirth(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)
	if got := w.node.Role(); got != string(RoleWriter) {
		t.Fatalf("writer-open node role = %s", got)
	}
	if got := w.node.Epoch(); got != 1 {
		t.Fatalf("first writer epoch = %d, want 1", got)
	}
	info, ok, err := resultstore.ReadWriterInfo(dir)
	if err != nil || !ok || info.Owner != "node-a" || info.Epoch != 1 {
		t.Fatalf("writer heartbeat = %+v, %v, %v", info, ok, err)
	}

	f := newMember(t, dir, "node-b", true, nil)
	if got := f.node.Role(); got != string(RoleFollower) {
		t.Fatalf("follower-open node role = %s", got)
	}
	if got := f.node.Epoch(); got != 1 {
		t.Fatalf("follower learned epoch %d, want 1", got)
	}
	h := f.node.Health()
	if h["role"] != "follower" || h["writer"] == nil {
		t.Fatalf("follower health %+v", h)
	}
}

// TestClaimRedirect: the second claimant is pointed at the first's URL.
func TestClaimRedirect(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)
	f := newMember(t, dir, "node-b", true, nil)

	acquired, _, err := w.node.TryClaim("hash-1", []byte(`{"name":"s"}`))
	if err != nil || !acquired {
		t.Fatalf("writer TryClaim = %v, %v", acquired, err)
	}
	acquired, holder, err := f.node.TryClaim("hash-1", nil)
	if err != nil || acquired {
		t.Fatalf("follower TryClaim = %v, %v", acquired, err)
	}
	if holder != w.srv.URL {
		t.Fatalf("holder URL = %q, want %q", holder, w.srv.URL)
	}
	if f.node.metrics.conflicts.Value() != 1 {
		t.Error("conflict not counted")
	}

	// Releasing frees the scenario for the peer.
	w.node.Release("hash-1")
	if acquired, _, _ := f.node.TryClaim("hash-1", nil); !acquired {
		t.Fatal("claim not acquirable after release")
	}
}

// TestFollowerPutForwarding: a follower's finished result lands in the
// shared store via the writer, bit-identically, and the claim is freed.
func TestFollowerPutForwarding(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)
	f := newMember(t, dir, "node-b", true, nil)

	value := docJSON(t, 7)
	if acquired, _, err := f.node.TryClaim("hash-7", value); err != nil || !acquired {
		t.Fatalf("TryClaim = %v, %v", acquired, err)
	}
	if err := f.node.PutResult("hash-7", value); err != nil {
		t.Fatalf("PutResult: %v", err)
	}
	var got json.RawMessage
	ok, err := w.store.Get("hash-7", &got)
	if err != nil || !ok {
		t.Fatalf("writer store Get = %v, %v", ok, err)
	}
	var a, b resultDoc
	if err := json.Unmarshal(value, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got, &b); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%b", a.Unsafety[0]) != fmt.Sprintf("%b", b.Unsafety[0]) {
		t.Errorf("forwarded result not bit-identical: %b vs %b", a.Unsafety[0], b.Unsafety[0])
	}
	if w.node.metrics.ingested.Value() != 1 || f.node.metrics.forwarded.Value() != 1 {
		t.Error("forward/ingest not counted")
	}
	// Claim released after the persist.
	if acquired, _, _ := w.node.TryClaim("hash-7", nil); !acquired {
		t.Error("claim still held after successful put")
	}
}

// TestPromotionAfterWriterDeath is the failover heart: kill -9 the
// writer (Abandon), tick the follower past the heartbeat, and it must
// promote under a new epoch and adopt the dead writer's unfinished work.
func TestPromotionAfterWriterDeath(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)

	var adopted atomic.Int32
	f := newMember(t, dir, "node-b", true, func(c *Config) {
		c.Submit = func(sc json.RawMessage) {
			if strings.Contains(string(sc), "orphan") {
				adopted.Add(1)
			}
		}
	})

	// The writer claims two scenarios: one it finishes, one it dies with.
	done := docJSON(t, 1)
	if acquired, _, err := w.node.TryClaim("hash-done", done); !acquired || err != nil {
		t.Fatal(err)
	}
	if err := w.node.PutResult("hash-done", done); err != nil {
		t.Fatal(err)
	}
	if acquired, _, err := w.node.TryClaim("hash-orphan", []byte(`{"name":"orphan"}`)); !acquired || err != nil {
		t.Fatal(err)
	}

	// kill -9: flock drops, heartbeat stops, claims stay on disk.
	w.node.claims.Abandon()
	w.store.Abandon()

	// Before the heartbeat expires the follower must NOT promote.
	f.node.Tick()
	if got := f.node.Role(); got != string(RoleFollower) {
		t.Fatalf("follower promoted against a live heartbeat (role %s)", got)
	}

	// Wait out heartbeat (4×20ms) and claim TTL, then tick.
	deadline := time.Now().Add(2 * time.Second)
	for f.node.Role() != string(RoleWriter) {
		if time.Now().After(deadline) {
			t.Fatalf("follower never promoted (role %s)", f.node.Role())
		}
		time.Sleep(10 * time.Millisecond)
		f.node.Tick()
	}

	if got := f.node.Epoch(); got != 2 {
		t.Errorf("promoted epoch = %d, want 2", got)
	}
	if f.node.metrics.promotions.Value() != 1 {
		t.Error("promotion not counted")
	}
	info, ok, _ := resultstore.ReadWriterInfo(dir)
	if !ok || info.Owner != "node-b" || info.Epoch != 2 {
		t.Errorf("heartbeat after promotion = %+v", info)
	}
	// The orphan is adopted once its claim TTL lapses — at promotion or
	// on a later writer tick, whichever the timing lands on. The finished
	// scenario must never be re-submitted.
	for adopted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("orphan never adopted")
		}
		time.Sleep(10 * time.Millisecond)
		f.node.Tick()
	}
	if got := adopted.Load(); got != 1 {
		t.Errorf("adopted %d scenarios, want 1 (the orphan only)", got)
	}
	if f.node.metrics.adoptions.Value() != 1 {
		t.Error("adoption not counted")
	}
	// The promoted writer serves writes directly now.
	if err := f.node.PutResult("hash-orphan", docJSON(t, 2)); err != nil {
		t.Fatalf("promoted PutResult: %v", err)
	}
	if !f.store.Has("hash-orphan") {
		t.Error("promoted put did not reach the store")
	}
}

// TestStaleEpochPutFenced: a put stamped with a pre-promotion epoch is
// rejected with 409 and counted — the e2e's stale-writer injection.
func TestStaleEpochPutFenced(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)

	req, err := http.NewRequest(http.MethodPost, w.srv.URL+PathResults+"?hash=hash-9",
		bytes.NewReader(docJSON(t, 9)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderEpoch, "0") // writer is at epoch 1
	req.Header.Set(HeaderOwner, "node-zombie")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch put answered %d, want 409", resp.StatusCode)
	}
	if w.node.metrics.fencedIn.Value() != 1 {
		t.Error("fenced write not counted")
	}
	if w.store.Has("hash-9") {
		t.Error("fenced put reached the store")
	}

	// Same epoch but a claim now owned by someone else: also fenced.
	if acquired, _, _ := w.node.TryClaim("hash-10", nil); !acquired {
		t.Fatal("setup claim failed")
	}
	req2, _ := http.NewRequest(http.MethodPost, w.srv.URL+PathResults+"?hash=hash-10",
		bytes.NewReader(docJSON(t, 10)))
	req2.Header.Set(HeaderEpoch, "1")
	req2.Header.Set(HeaderOwner, "node-zombie")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("lost-claim put answered %d, want 409", resp2.StatusCode)
	}
	if w.node.metrics.fencedIn.Value() != 2 {
		t.Error("second fenced write not counted")
	}
}

// TestPendingPutRetries: with the writer unreachable, a follower parks
// the finished result, keeps the claim, and delivers on a later tick
// once the writer is back.
func TestPendingPutRetries(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)
	f := newMember(t, dir, "node-b", true, nil)

	value := docJSON(t, 3)
	if acquired, _, err := f.node.TryClaim("hash-3", value); !acquired || err != nil {
		t.Fatal(err)
	}
	// Point the follower at a dead writer URL.
	f.node.mu.Lock()
	goodWriter := f.node.writer
	f.node.writer.URL = "http://127.0.0.1:1" // nothing listens there
	f.node.mu.Unlock()

	if err := f.node.PutResult("hash-3", value); err != nil {
		t.Fatalf("PutResult with dead writer should park, got %v", err)
	}
	if w.store.Has("hash-3") {
		t.Fatal("result stored despite dead writer")
	}
	h := f.node.Health()
	if h["pending"] != 1 || h["claims"] != 1 {
		t.Fatalf("health after park = %+v, want pending=1 claims=1", h)
	}

	// Writer heartbeat restores the URL; the next tick flushes.
	if err := w.node.writeHeartbeat(); err != nil {
		t.Fatal(err)
	}
	_ = goodWriter
	f.node.Tick()
	if !w.store.Has("hash-3") {
		t.Fatal("pending put not flushed after writer returned")
	}
	h = f.node.Health()
	if h["pending"] != 0 || h["claims"] != 0 {
		t.Fatalf("health after flush = %+v, want pending=0 claims=0", h)
	}
}

// TestInfoEndpoint: role and epoch are served over HTTP.
func TestInfoEndpoint(t *testing.T) {
	dir := t.TempDir()
	w := newMember(t, dir, "node-a", false, nil)
	resp, err := http.Get(w.srv.URL + PathInfo)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["role"] != "writer" || doc["epoch"] != float64(1) || doc["owner"] != "node-a" {
		t.Fatalf("info = %+v", doc)
	}
}

// TestPutToNonWriterMisdirected: followers answer 421 with their view of
// the writer so a confused sender can re-aim.
func TestPutToNonWriterMisdirected(t *testing.T) {
	dir := t.TempDir()
	newMember(t, dir, "node-a", false, nil)
	f := newMember(t, dir, "node-b", true, nil)

	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+PathResults+"?hash=h", bytes.NewReader([]byte(`{}`)))
	req.Header.Set(HeaderEpoch, "1")
	req.Header.Set(HeaderOwner, "x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("put to follower answered %d, want 421", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["writer"] == nil {
		t.Fatalf("421 body carries no writer pointer: %+v", doc)
	}
}
