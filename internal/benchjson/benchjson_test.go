package benchjson

import (
	"os"
	"strings"
	"testing"
)

// TestParseSplitOutput pins the parser against test2json's habit of
// flushing the benchmark name in one output event and the measurements in
// the next.
func TestParseSplitOutput(t *testing.T) {
	stream := `{"Time":"2026-08-08T12:00:00Z","Action":"start","Package":"ahs/internal/mc"}
{"Time":"2026-08-08T12:00:01Z","Action":"output","Package":"ahs/internal/mc","Output":"BenchmarkMCBaseline-16 "}
{"Time":"2026-08-08T12:00:02Z","Action":"output","Package":"ahs/internal/mc","Output":"\t     100\t    250000 ns/op\t  1024 B/op\t     12 allocs/op\n"}
{"Time":"2026-08-08T12:00:03Z","Action":"output","Package":"ahs/internal/mc","Output":"BenchmarkMCInstrumented \t      50\t    500000 ns/op\n"}
{"Time":"2026-08-08T12:00:04Z","Action":"pass","Package":"ahs/internal/mc","Elapsed":1.5}
`
	results, err := ParseResults(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkMCBaseline" || r.Procs != 16 || r.Iterations != 100 ||
		r.NsPerOp != 250000 || r.BytesPerOp != 1024 || r.AllocsPerOp != 12 {
		t.Errorf("split-output result misparsed: %+v", r)
	}
	r = results[1]
	if r.Name != "BenchmarkMCInstrumented" || r.Procs != 1 || r.BytesPerOp != -1 {
		t.Errorf("unsuffixed result misparsed: %+v", r)
	}
}

func TestParseRejectsForeignSchema(t *testing.T) {
	for name, stream := range map[string]string{
		"unknown action": `{"Action":"explode","Package":"p"}`,
		"unknown field":  `{"Action":"output","Package":"p","Output":"x\n","Bogus":1}`,
		"not json":       `BenchmarkMCBaseline-16   100   250000 ns/op`,
	} {
		if _, err := Parse(strings.NewReader(stream)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestCommittedBaseline pins the schema of the committed benchmark
// baseline: it must parse as a go test -json stream and contain the
// Monte-Carlo baseline plus sim, cluster and tracing measurements.
// Regenerate with `make bench-json` after an intentional change.
func TestCommittedBaseline(t *testing.T) {
	f, err := os.Open("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline missing (run `make bench-json`): %v", err)
	}
	defer f.Close()
	results, err := ParseResults(f)
	if err != nil {
		t.Fatalf("baseline does not parse: %v", err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
		if r.Iterations == 0 || r.NsPerOp <= 0 {
			t.Errorf("degenerate measurement: %+v", r)
		}
	}
	for name, pkg := range map[string]string{
		"BenchmarkMCBaseline":           "ahs/internal/mc",
		"BenchmarkPoissonTrajectory":    "ahs/internal/sim",
		"BenchmarkCoordinatorNoJournal": "ahs/internal/cluster",
		"BenchmarkStartDisabled":        "ahs/internal/obs",
		"BenchmarkStorePut":             "ahs/internal/resultstore",
		"BenchmarkStoreGet":             "ahs/internal/resultstore",
	} {
		r, ok := byName[name]
		if !ok {
			t.Errorf("baseline missing %s", name)
			continue
		}
		if r.Package != pkg {
			t.Errorf("%s recorded under %q, want %q", name, r.Package, pkg)
		}
	}
}
