// Package benchjson parses the `go test -json -bench` event stream into
// benchmark results. The committed BENCH_baseline.json at the repository
// root (regenerated with `make bench-json`) is such a stream; pinning its
// schema here keeps regression tooling — and CI — honest about what the
// baseline file actually contains.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Event is one line of the test2json stream emitted by `go test -json`.
// Fields mirror cmd/test2json's event type; unknown fields are rejected so
// a toolchain schema change is noticed, not silently dropped.
type Event struct {
	Time        time.Time `json:"Time,omitempty"`
	Action      string    `json:"Action"`
	Package     string    `json:"Package,omitempty"`
	Test        string    `json:"Test,omitempty"`
	Elapsed     float64   `json:"Elapsed,omitempty"`
	Output      string    `json:"Output,omitempty"`
	FailedBuild string    `json:"FailedBuild,omitempty"`
}

// actions is the closed set of test2json actions; an unknown action means
// the stream is not what `make bench-json` produces.
var actions = map[string]bool{
	"start": true, "run": true, "pause": true, "cont": true,
	"pass": true, "bench": true, "fail": true, "output": true, "skip": true,
}

// Result is one parsed benchmark measurement.
type Result struct {
	// Package is the Go import path the benchmark ran in.
	Package string
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string
	// Procs is the -P suffix (GOMAXPROCS during the run; 1 if unsuffixed).
	Procs int
	// Iterations is b.N for the measurement.
	Iterations uint64
	// NsPerOp is the reported ns/op.
	NsPerOp float64
	// BytesPerOp and AllocsPerOp are reported only under -benchmem;
	// -1 when absent.
	BytesPerOp, AllocsPerOp float64
}

// resultLine matches a benchmark result line reassembled from output
// events, e.g. "BenchmarkMCBaseline-16   100   12345 ns/op   0 B/op".
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// Parse decodes a `go test -json` stream, validating every line against
// the Event schema (strict field set, known actions).
func Parse(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("benchjson: line %d: %w", line, err)
		}
		if !actions[ev.Action] {
			return nil, fmt.Errorf("benchjson: line %d: unknown action %q", line, ev.Action)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return events, nil
}

// Results extracts benchmark measurements from a parsed stream. test2json
// may split one result line across several output events (the benchmark
// name is flushed before the measurements), so output is reassembled per
// package before scanning.
func Results(events []Event) []Result {
	perPkg := map[string]*strings.Builder{}
	var order []string
	for _, ev := range events {
		if ev.Action != "output" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	var out []Result
	for _, pkg := range order {
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			res := Result{
				Package:     pkg,
				Name:        m[1],
				Procs:       1,
				BytesPerOp:  -1,
				AllocsPerOp: -1,
			}
			if m[2] != "" {
				res.Procs, _ = strconv.Atoi(m[2])
			}
			res.Iterations, _ = strconv.ParseUint(m[3], 10, 64)
			res.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
			for _, metric := range []struct {
				unit string
				dst  *float64
			}{{"B/op", &res.BytesPerOp}, {"allocs/op", &res.AllocsPerOp}} {
				if v, ok := trailingMetric(m[5], metric.unit); ok {
					*metric.dst = v
				}
			}
			out = append(out, res)
		}
	}
	return out
}

// ParseResults is Parse followed by Results.
func ParseResults(r io.Reader) ([]Result, error) {
	events, err := Parse(r)
	if err != nil {
		return nil, err
	}
	return Results(events), nil
}

// trailingMetric finds "<value> <unit>" in the tail of a result line.
func trailingMetric(tail, unit string) (float64, bool) {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i+1] == unit {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
