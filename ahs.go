// Package ahs is the public facade of the AHS safety-modeling library, a
// reproduction of "Safety Modeling and Evaluation of Automated Highway
// Systems" (Hamouda, Kaâniche, Kanoun; DSN 2009).
//
// The library models a two-lane Automated Highway System of coordinated
// vehicle platoons as a compositional Stochastic Activity Network: each
// vehicle's failure modes and recovery maneuvers (Table 1 of the paper),
// the catastrophic multi-failure situations (Table 2), the dynamic joining
// and leaving of vehicles, and the four inter-/intra-platoon coordination
// strategies (Table 3). The headline measure is the system unsafety S(t) —
// the probability that the AHS has reached a catastrophic state by trip
// duration t — estimated by batched Monte-Carlo simulation with optional
// rare-event importance sampling.
//
// Quick start:
//
//	sys, err := ahs.New(ahs.DefaultParams())
//	if err != nil { ... }
//	curve, err := sys.UnsafetyCurve(ahs.EvalOptions{
//		Times:       []float64{2, 4, 6, 8, 10},
//		MaxBatches:  20000,
//		FailureBias: sys.SuggestedFailureBias(10),
//	})
//
// The heavy lifting lives in the internal packages: internal/san (the SAN
// formalism), internal/sim (trajectory execution), internal/ctmc (exact
// solution of reduced models), internal/mc (batched estimation),
// internal/platoon (the AHS domain rules) and internal/core (the composed
// model). This package re-exports the types a downstream user needs.
package ahs

import (
	"ahs/internal/core"
	"ahs/internal/mc"
	"ahs/internal/platoon"
	"ahs/internal/stats"
)

// Params collects every model parameter of the paper's §4.1; see
// DefaultParams for the base configuration.
type Params = core.Params

// EvalOptions configures the Monte-Carlo estimation of unsafety.
type EvalOptions = core.EvalOptions

// System is a built AHS safety model ready for evaluation.
type System = core.AHS

// Curve is an estimated S(t) curve over a time grid.
type Curve = mc.Curve

// Interval is a point estimate with a two-sided confidence interval.
type Interval = stats.Interval

// Strategy is an inter-/intra-platoon coordination strategy (Table 3).
type Strategy = platoon.Strategy

// Maneuver is one of the six recovery maneuvers of Table 1.
type Maneuver = platoon.Maneuver

// FailureMode is one of the six vehicle failure modes of Table 1.
type FailureMode = platoon.FailureMode

// The four coordination strategies of Table 3 (inter, then intra):
// decentralized strategies involve fewer vehicles per maneuver and are
// therefore safer (Figures 14 and 15 of the paper).
var (
	DD = platoon.DD
	DC = platoon.DC
	CD = platoon.CD
	CC = platoon.CC
)

// AllStrategies lists the four coordination strategies in Table 3 order.
func AllStrategies() []Strategy { return platoon.AllStrategies() }

// ParseStrategy parses a two-letter strategy code ("DD", "DC", "CD", "CC").
func ParseStrategy(code string) (Strategy, error) { return platoon.ParseStrategy(code) }

// DefaultParams returns the paper's base configuration: platoons of up to
// 10 vehicles, λ = 1e-5/hr, join 12/hr, leave 4/hr, change 6/hr,
// decentralized/decentralized coordination.
func DefaultParams() Params { return core.DefaultParams() }

// New validates the parameters and builds the composed SAN model.
func New(p Params) (*System, error) { return core.Build(p) }

// NewVariants builds one System per strategy from a shared base parameter
// set, e.g. to compare the four Table 3 scenarios. Every variant goes
// through the same audited build path as New.
func NewVariants(base Params, strategies []Strategy) ([]*System, error) {
	return core.BuildVariants(base, strategies)
}

// PaperStopRule returns the convergence criterion of the paper's §4.1:
// 95% confidence, 0.1 relative half-width, at least 10000 batches.
func PaperStopRule() stats.RelativeStopRule { return stats.PaperStopRule() }
