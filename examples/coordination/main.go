// Coordination: compare the four inter-/intra-platoon coordination
// strategies of the paper's Table 3 (the question behind Figures 14/15).
//
// Decentralized coordination involves fewer vehicles per recovery maneuver,
// so each maneuver has fewer ways to fail and the system is safer; the
// inter-platoon choice matters more than the intra-platoon one because exit
// maneuvers cross lanes.
//
//	go run ./examples/coordination
package main

import (
	"fmt"
	"log"

	"ahs"
)

func main() {
	const tripHours = 6.0

	fmt.Printf("S(%gh) per coordination strategy (n=10, λ=1e-5/hr)\n\n", tripHours)
	fmt.Println("strategy  inter          intra          S(6h)        vs DD")

	var baseline float64
	for _, strategy := range ahs.AllStrategies() {
		params := ahs.DefaultParams()
		params.Strategy = strategy

		sys, err := ahs.New(params)
		if err != nil {
			log.Fatal(err)
		}
		iv, err := sys.Unsafety(tripHours, ahs.EvalOptions{
			Seed:        7, // common random numbers: differences are strategy-driven
			MaxBatches:  20000,
			FailureBias: sys.SuggestedFailureBias(tripHours),
		})
		if err != nil {
			log.Fatal(err)
		}
		if strategy == ahs.DD {
			baseline = iv.Point
		}
		fmt.Printf("%-8s  %-13s  %-13s  %.3e  %+.1f%%\n",
			strategy, strategy.Inter, strategy.Intra, iv.Point,
			100*(iv.Point-baseline)/baseline)
	}

	fmt.Println()
	fmt.Println("Expected ordering (paper, Figure 14): DD safest, CC least safe,")
	fmt.Println("with the inter-platoon choice (D_ vs C_) dominating the gap.")
}
