// Example service demonstrates the evaluation service end to end from a
// plain HTTP client: submit a scenario to a running ahs-serve, poll the
// job's progress, and print the resulting S(t) curve.
//
// Start the server first, then run the client:
//
//	make serve &
//	go run ./examples/service -addr http://localhost:8080
//
// Submitting the same scenario twice demonstrates the cache: the second
// run answers instantly with "cached: true".
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

// scenario is the paper's Figure 10 base case at a light batch budget,
// inlined so the example is self-contained. Any internal/config scenario
// JSON works, e.g. docs/scenario-example.json.
const scenario = `{
	"name": "example-client",
	"n": 4,
	"lambdaPerHour": 1e-4,
	"strategy": "DD",
	"tripHours": [2, 4, 6, 8, 10],
	"batches": 5000,
	"seed": 1
}`

type ack struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	StatusURL string `json:"statusUrl"`
	ResultURL string `json:"resultUrl"`
}

type jobView struct {
	Status   string `json:"status"`
	Error    string `json:"error"`
	Progress struct {
		BatchesDone uint64 `json:"batchesDone"`
		MaxBatches  uint64 `json:"maxBatches"`
	} `json:"progress"`
}

type result struct {
	Times     []float64 `json:"times"`
	Unsafety  []float64 `json:"unsafety"`
	CILo      []float64 `json:"ciLo"`
	CIHi      []float64 `json:"ciHi"`
	Batches   uint64    `json:"batches"`
	Converged bool      `json:"converged"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "ahs-serve base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "service example:", err)
		os.Exit(1)
	}
}

func run(base string) error {
	submitted, err := submit(base)
	if err != nil {
		return err
	}
	fmt.Printf("submitted job %s (status %s, cached %v)\n",
		submitted.ID, submitted.Status, submitted.Cached)

	for submitted.Status != "done" {
		var job jobView
		if err := getJSON(base+submitted.StatusURL, &job); err != nil {
			return err
		}
		switch job.Status {
		case "done":
			submitted.Status = "done"
		case "failed", "cancelled":
			return fmt.Errorf("job %s %s: %s", submitted.ID, job.Status, job.Error)
		default:
			fmt.Printf("  %s: %d/%d batches\n",
				job.Status, job.Progress.BatchesDone, job.Progress.MaxBatches)
			time.Sleep(250 * time.Millisecond)
		}
	}

	var res result
	if err := getJSON(base+submitted.ResultURL, &res); err != nil {
		return err
	}
	fmt.Printf("\nS(t), %d batches, converged=%v:\n", res.Batches, res.Converged)
	fmt.Printf("%8s  %12s  %12s  %12s\n", "t (h)", "S(t)", "ci_lo", "ci_hi")
	for i, t := range res.Times {
		fmt.Printf("%8g  %12.4e  %12.4e  %12.4e\n", t, res.Unsafety[i], res.CILo[i], res.CIHi[i])
	}
	return nil
}

func submit(base string) (*ack, error) {
	resp, err := http.Post(base+"/v1/evaluate", "application/json",
		bytes.NewReader([]byte(scenario)))
	if err != nil {
		return nil, fmt.Errorf("is ahs-serve running? %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("evaluate: %s (%s)", resp.Status, e.Error)
	}
	var a ack
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
