// Platoonsize: study how the maximum platoon size n drives unsafety (the
// question behind Figures 10 and 12), reproducing the paper's design
// conclusion that "the size of the platoons should not exceed 10" for
// λ = 1e-5/hr.
//
//	go run ./examples/platoonsize
package main

import (
	"fmt"
	"log"

	"ahs"
)

func main() {
	const tripHours = 6.0
	// The paper's acceptability threshold is implicit; one order of
	// magnitude above the n=8 baseline marks clearly degraded safety.
	sizes := []int{4, 6, 8, 10, 12, 14, 16, 18}

	fmt.Printf("S(%gh) versus maximum platoon size (λ=1e-5/hr, join=12/hr, leave=4/hr)\n\n", tripHours)
	fmt.Println("   n     vehicles     S(6h)        growth")

	prev := 0.0
	for _, n := range sizes {
		params := ahs.DefaultParams()
		params.N = n

		sys, err := ahs.New(params)
		if err != nil {
			log.Fatal(err)
		}
		iv, err := sys.Unsafety(tripHours, ahs.EvalOptions{
			Seed:        3,
			MaxBatches:  10000,
			FailureBias: sys.SuggestedFailureBias(tripHours),
		})
		if err != nil {
			log.Fatal(err)
		}
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("x%.2f", iv.Point/prev)
		}
		fmt.Printf("%4d     %8d     %.3e  %s\n", n, 2*n, iv.Point, growth)
		prev = iv.Point
	}

	fmt.Println()
	fmt.Println("More vehicles per platoon means more simultaneous failure")
	fmt.Println("opportunities in one coordination neighbourhood; unsafety grows")
	fmt.Println("steadily with n, supporting the paper's recommendation of n <= 10.")
}
