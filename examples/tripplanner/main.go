// Tripplanner: answer the paper's second design question — "what is the
// maximum trip duration?" — by inverting the unsafety curve against a
// safety budget, and show what would cause the budget to be blown
// (the breakdown by catastrophic situation of Table 2).
//
//	go run ./examples/tripplanner
package main

import (
	"fmt"
	"log"

	"ahs"
	"ahs/internal/core"
	"ahs/internal/platoon"
)

func main() {
	const budget = 5e-7 // accept at most a 1-in-2-million catastrophic trip

	params := ahs.DefaultParams()
	sys, err := ahs.New(params)
	if err != nil {
		log.Fatal(err)
	}

	times := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	curve, err := sys.UnsafetyCurve(ahs.EvalOptions{
		Times:       times,
		Seed:        13,
		MaxBatches:  20000,
		FailureBias: sys.SuggestedFailureBias(times[len(times)-1]),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Safety budget: S(t) <= %.1e (n=%d, λ=%g/hr, %s)\n\n",
		budget, params.N, params.Lambda, params.Strategy)
	fmt.Println("trip (h)    S(t)         within budget?")
	longest := 0.0
	for i, t := range curve.Times {
		ok := curve.Mean[i] <= budget
		marker := "no"
		if ok {
			marker = "yes"
			longest = t
		}
		fmt.Printf("%7.0f     %.3e    %s\n", t, curve.Mean[i], marker)
	}
	if longest > 0 {
		fmt.Printf("\nLongest admissible trip: about %g hours.\n", longest)
	} else {
		fmt.Println("\nNo admissible trip duration under this budget.")
	}

	// What would a catastrophe look like? Decompose S(10h) by the
	// triggering situation of Table 2.
	bd, err := sys.UnsafetyBreakdown(10, core.EvalOptions{
		Seed:        13,
		MaxBatches:  20000,
		FailureBias: sys.SuggestedFailureBias(10),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDecomposition of S(10h) = %.3e by catastrophic situation:\n", bd.Total.Point)
	for _, s := range []platoon.Situation{platoon.ST1, platoon.ST2, platoon.ST3} {
		iv := bd.BySituation[s]
		share := 0.0
		if bd.Total.Point > 0 {
			share = 100 * iv.Point / bd.Total.Point
		}
		fmt.Printf("  %s  %.3e  (%.0f%%)  — %s\n", s, iv.Point, share, situationText(s))
	}
}

func situationText(s platoon.Situation) string {
	switch s {
	case platoon.ST1:
		return "two or more class A failures"
	case platoon.ST2:
		return "a class A failure plus enough class B/C failures"
	default:
		return "four or more class B/C failures"
	}
}
