// Maneuvertiming: derive the maneuver execution rates of the safety model
// from highway physics instead of assuming them.
//
// The paper quotes maneuver durations of 2-4 minutes (execution rates of
// 15-30 per hour) from the PATH experiments. This example reconstructs
// those durations from kinematic first principles — braking profiles,
// split-gap opening, lane changes, distance to the next exit, plus
// explicit coordination and lane-clearing overheads — and feeds the
// calibrated rates back into the SAN safety model.
//
//	go run ./examples/maneuvertiming
package main

import (
	"fmt"
	"log"
	"sort"

	"ahs"
	"ahs/internal/kinematics"
	"ahs/internal/platoon"
)

func main() {
	cfg := kinematics.DefaultConfig()
	timings, err := kinematics.Timings(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Derived maneuver timings (cruise %.0f m/s, intra gap %.0f m, inter gap %.0f m):\n\n",
		cfg.CruiseSpeed, cfg.IntraGap, cfg.InterGap)
	fmt.Println("maneuver  total     rate      phases")
	for _, m := range platoon.AllManeuvers() {
		t := timings[m]
		fmt.Printf("%-8s  %5.0f s   %4.1f/hr  %s\n", m, t.Total, t.RatePerHour(), phaseList(t))
	}

	// Feed the calibrated rates into the safety model and compare against
	// the library defaults.
	rates, err := kinematics.SuggestedManeuverRates(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defaults := ahs.DefaultParams()
	calibrated := ahs.DefaultParams()
	calibrated.ManeuverRates = rates
	for name, p := range map[string]ahs.Params{"default rates": defaults, "kinematic rates": calibrated} {
		sys, err := ahs.New(p)
		if err != nil {
			log.Fatal(err)
		}
		iv, err := sys.Unsafety(6, ahs.EvalOptions{
			Seed:        3,
			MaxBatches:  10000,
			FailureBias: sys.SuggestedFailureBias(6),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nS(6h) with %-16s %.3e  %v", name+":", iv.Point, iv)
	}
	fmt.Println()
	fmt.Println("\nSlower maneuvers keep failures active longer, so the kinematic")
	fmt.Println("calibration shifts the unsafety — but stays within the same order")
	fmt.Println("of magnitude, confirming the paper's 15-30/hr operating range.")
}

func phaseList(t kinematics.Timing) string {
	names := make([]string, 0, len(t.Phases))
	for name := range t.Phases {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return t.Phases[names[i]] > t.Phases[names[j]] })
	out := ""
	for i, name := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %.0fs", name, t.Phases[name])
	}
	return out
}
