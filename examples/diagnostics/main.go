// Diagnostics: record full trajectory traces of the AHS model and summarise
// what actually happens on the highway — how often vehicles fail, maneuver,
// join, leave and change platoons — cross-checking the empirical activity
// rates against the model parameters.
//
//	go run ./examples/diagnostics
package main

import (
	"fmt"
	"log"

	"ahs"
	"ahs/internal/rng"
	"ahs/internal/sim"
	"ahs/internal/trace"
)

func main() {
	params := ahs.DefaultParams()
	params.Lambda = 0.005 // visible failure activity within a few trips
	sys, err := ahs.New(params)
	if err != nil {
		log.Fatal(err)
	}

	const horizon = 10.0
	const trips = 200

	tr := &sim.Trace{}
	runner, err := sim.NewRunner(sys.Model, sim.Options{MaxTime: horizon, Observer: tr})
	if err != nil {
		log.Fatal(err)
	}

	summary := trace.Summarize(nil, 0, true)
	src := rng.NewSource(2)
	for i := 0; i < trips; i++ {
		tr.Reset()
		res, err := runner.Run(src.Stream(uint64(i)))
		if err != nil {
			log.Fatal(err)
		}
		summary.Merge(tr.Events, res.End, true)
	}

	fmt.Printf("Activity profile over %d trips of %g hours (n=%d, λ=%g/hr):\n\n",
		trips, horizon, params.N, params.Lambda)
	fmt.Print(summary)

	// Sanity cross-checks a user can do with the same data:
	fmt.Println("\nCross-checks against the configured rates:")
	fmt.Printf("  join rate:   configured %5.2f/hr, observed %5.2f/hr\n",
		params.JoinRate*occupancy(summary), summary.Rate("join"))
	fmt.Printf("  ch1+ch2:     configured %5.2f/hr, observed %5.2f/hr\n",
		2*params.ChangeRate, summary.Rate("ch1")+summary.Rate("ch2"))
	fmt.Printf("  leave total: configured %5.2f/hr, observed %5.2f/hr (leave1 + transit exits)\n",
		params.LeaveRate, summary.Rate("leave1")+summary.Rate("done"))
	fmt.Println("\n(Observed rates sit below configured ones exactly when the")
	fmt.Println("enabling conditions — free slots, platoon capacity — bind.)")
}

// occupancy is a placeholder factor of 1: the join activity is enabled only
// while a slot is free, so its observed rate is the configured rate times
// the fraction of time a slot was available.
func occupancy(*trace.Summary) float64 { return 1 }
