// Quickstart: build the paper's base AHS configuration and estimate the
// unsafety curve S(t) for trips of 2 to 10 hours.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ahs"
)

func main() {
	// The paper's §4.1 base case: two platoons of up to 10 vehicles,
	// failure rate λ = 1e-5/hr, join 12/hr, leave 4/hr, decentralized
	// coordination.
	params := ahs.DefaultParams()
	sys, err := ahs.New(params)
	if err != nil {
		log.Fatal(err)
	}

	// S(t) at λ=1e-5/hr is on the order of 1e-7..1e-6: far too rare for
	// naive Monte-Carlo, so turn on importance sampling with the
	// horizon-calibrated forcing factor.
	opts := ahs.EvalOptions{
		Times:       []float64{2, 4, 6, 8, 10},
		Seed:        1,
		MaxBatches:  10000,
		FailureBias: sys.SuggestedFailureBias(10),
	}
	curve, err := sys.UnsafetyCurve(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("AHS unsafety, n=%d, λ=%g/hr, strategy %s (%d batches)\n",
		params.N, params.Lambda, params.Strategy, curve.Batches)
	fmt.Println("trip (h)    S(t)          95% CI")
	for i, t := range curve.Times {
		iv := curve.Intervals[i]
		fmt.Printf("%7.0f     %.3e     [%.3e, %.3e]\n", t, curve.Mean[i], iv.Lo, iv.Hi)
	}
	fmt.Println()
	fmt.Println("Reading: a 10-hour trip in this configuration carries about a")
	fmt.Printf("1-in-%.0f chance that the highway reaches a catastrophic state.\n",
		1/curve.Final())
}
