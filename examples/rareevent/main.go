// Rareevent: demonstrate why rare-event importance sampling is essential
// for the paper's parameter regime, by estimating the same unsafety twice —
// naively and with failure-rate forcing — on an equal trajectory budget.
//
// At λ = 1e-4/hr the unsafety of a 10-hour trip is ~1e-4: a naive estimator
// with 20000 trajectories sees a handful of hits and its confidence
// interval spans half an order of magnitude, while the importance-sampling
// estimator nails the value with the same budget. At the paper's base rate
// λ = 1e-5/hr (S ~ 1e-6) the naive estimator would need millions of
// trajectories to see its first hit.
//
//	go run ./examples/rareevent
package main

import (
	"fmt"
	"log"

	"ahs"
)

func main() {
	const (
		tripHours = 10.0
		batches   = 20000
	)
	params := ahs.DefaultParams()
	params.Lambda = 1e-4 // rare, but still (barely) measurable naively

	sys, err := ahs.New(params)
	if err != nil {
		log.Fatal(err)
	}

	naive, err := sys.Unsafety(tripHours, ahs.EvalOptions{
		Seed:       11,
		MaxBatches: batches,
	})
	if err != nil {
		log.Fatal(err)
	}

	bias := sys.SuggestedFailureBias(tripHours)
	forced, err := sys.Unsafety(tripHours, ahs.EvalOptions{
		Seed:        11,
		MaxBatches:  batches,
		FailureBias: bias,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Estimating S(%gh) at λ=%g/hr with %d trajectories each:\n\n",
		tripHours, params.Lambda, batches)
	fmt.Printf("naive Monte-Carlo:       %v\n", naive)
	fmt.Printf("importance sampling:     %v   (failure rates forced x%.1f)\n", forced, bias)

	rel := func(iv ahs.Interval) float64 { return iv.RelativeHalfWidth() }
	fmt.Printf("\nrelative CI half-width:  naive %.0f%%  vs  forced %.0f%%\n",
		100*rel(naive), 100*rel(forced))
	fmt.Println("\nThe forcing multiplies every failure-mode rate and reweights each")
	fmt.Println("trajectory by its exact likelihood ratio, so the estimator stays")
	fmt.Println("unbiased (validated against exact CTMC solutions in the tests)")
	fmt.Println("while concentrating the sampling effort on failure-rich paths.")
}
