// Example cluster runs the distributed evaluation topology in one
// process: a coordinator serving the /cluster/v1/ lease API, two workers
// pulling chunks from it over real HTTP, and a single-process reference
// evaluation of the same scenario. It prints the merged S(t) curve and
// verifies the subsystem's central claim — the distributed result is
// bit-identical to the single-process one.
//
//	go run ./examples/cluster
//
// The same topology across machines is two commands; see docs/cluster.md:
//
//	ahs-serve -cluster -addr :8080
//	ahs-worker -coordinator http://coordinator:8080
package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/config"
	"ahs/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster example:", err)
		os.Exit(1)
	}
}

func run() error {
	// The paper's base platoon at a light batch budget, so the demo runs
	// in seconds. Any internal/config scenario works.
	sc := &config.Scenario{
		Name:          "cluster-demo",
		N:             4,
		LambdaPerHour: 1e-4,
		Strategy:      "DD",
		TripHours:     []float64{2, 4, 6, 8, 10},
		Batches:       8000,
		Seed:          1,
	}

	// Coordinator: shards jobs into 2000-batch chunks and leases them out.
	coord := cluster.New(cluster.Config{
		ChunkBatches: 2000,
		LeaseTTL:     time.Minute,
	})
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("coordinator listening on %s\n", url)

	// Two workers join over real HTTP, exactly like ahs-worker processes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &cluster.Worker{
			Coordinator: url,
			ID:          fmt.Sprintf("demo-w%d", i),
			SimWorkers:  1,
			Poll:        20 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	for coord.Status().WorkersLive < 2 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("two workers registered; evaluating through the cluster…")

	start := time.Now()
	curve, bias, err := coord.UnsafetyCurve(ctx, sc, 1, func(done, max uint64) {
		fmt.Printf("\r  merged %d/%d batches", done, max)
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ncluster evaluation done in %v (importance-sampling bias ×%.0f)\n\n", time.Since(start).Round(time.Millisecond), bias)

	fmt.Println("  t (h)   unsafety S(t)         95% CI")
	for i, tp := range curve.Times {
		fmt.Printf("  %5.1f   %.6e   [%.3e, %.3e]\n",
			tp, curve.Mean[i], curve.Intervals[i].Lo, curve.Intervals[i].Hi)
	}

	// The claim that makes the backend interchangeable: a single process
	// produces the same bits.
	fmt.Println("\nre-evaluating single-process for the bit-identity check…")
	local, err := service.Evaluate(context.Background(), sc, 1, nil)
	if err != nil {
		return err
	}
	if local.Batches != curve.Batches {
		return fmt.Errorf("batches differ: cluster %d, local %d", curve.Batches, local.Batches)
	}
	for i := range curve.Mean {
		if math.Float64bits(curve.Mean[i]) != math.Float64bits(local.Unsafety[i]) {
			return fmt.Errorf("S(t=%g) differs: cluster %b, local %b", curve.Times[i], curve.Mean[i], local.Unsafety[i])
		}
	}
	fmt.Printf("single-process run is bit-identical across all %d grid points ✓\n", len(curve.Times))
	return nil
}
