module ahs

go 1.22
